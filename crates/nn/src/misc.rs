//! Structural and embedding modules.

use fx_core::{func, Module, ModuleExt, Result, Value};
use fx_tensor::Tensor;
use fx_tensor::rng::Rng;
use std::any::Any;

/// Flattens a contiguous range of dims, `nn.Flatten`.
#[derive(Debug, Clone, Copy)]
pub struct Flatten {
    /// First dim to flatten (default 1, preserving the batch dim).
    pub start_dim: i64,
    /// Last dim to flatten (default -1).
    pub end_dim: i64,
}

impl Default for Flatten {
    fn default() -> Self {
        Flatten {
            start_dim: 1,
            end_dim: -1,
        }
    }
}

impl Module for Flatten {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        func::flatten(&inputs[0], self.start_dim, self.end_dim)
    }

    fn type_name(&self) -> &'static str {
        "Flatten"
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!("start_dim={}, end_dim={}", self.start_dim, self.end_dim)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Dropout, `nn.Dropout` — the identity at inference time, but recorded
/// in the IR so transforms can observe and strip it.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Drop probability (training-time semantics; unused at inference).
    pub p: f64,
}

impl Dropout {
    /// Dropout with probability `p`.
    pub fn new(p: f64) -> Dropout {
        Dropout { p }
    }
}

impl Module for Dropout {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        func::dropout(&inputs[0], self.p)
    }

    fn type_name(&self) -> &'static str {
        "Dropout"
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!("p={}", self.p)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Embedding table, `nn.Embedding`.
#[derive(Debug, Clone)]
pub struct Embedding {
    weight: Tensor,
    num_embeddings: usize,
    embedding_dim: usize,
}

impl Embedding {
    /// A table of `num_embeddings` vectors of `embedding_dim`, normal
    /// initialized.
    pub fn new<R: Rng>(num_embeddings: usize, embedding_dim: usize, rng: &mut R) -> Embedding {
        Embedding {
            weight: Tensor::randn(&[num_embeddings, embedding_dim], rng),
            num_embeddings,
            embedding_dim,
        }
    }

    /// The table `[V, D]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }
}

impl Module for Embedding {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        let w = self.attr("weight")?;
        func::embedding(&w, &inputs[0])
    }

    fn type_name(&self) -> &'static str {
        "Embedding"
    }

    fn own_parameters(&self) -> Vec<(String, Tensor)> {
        vec![("weight".to_string(), self.weight.clone())]
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!("{}, {}", self.num_embeddings, self.embedding_dim)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    #[test]
    fn flatten_keeps_batch_dim() {
        let x = Value::Tensor(Tensor::ones(&[2, 3, 4]));
        let y = Flatten::default().call(&[x]).unwrap();
        assert_eq!(y.as_tensor().unwrap().shape(), &[2, 12]);
    }

    #[test]
    fn dropout_is_identity() {
        let x = Value::Tensor(Tensor::ones(&[4]));
        let y = Dropout::new(0.8).call(&[x.clone()]).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn embedding_lookup() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(10, 4, &mut rng);
        let idx = Value::Tensor(Tensor::from_i64(vec![0, 3, 0], &[3]));
        let y = e.call(&[idx]).unwrap();
        let yt = y.as_tensor().unwrap();
        assert_eq!(yt.shape(), &[3, 4]);
        // Row 0 and row 2 are the same vector.
        let d = yt.as_f32().unwrap();
        assert_eq!(&d[0..4], &d[8..12]);
    }
}
