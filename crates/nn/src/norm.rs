//! Normalization layers.

use fx_core::{func, Module, ModuleExt, Result, Value};
use fx_tensor::Tensor;
use std::any::Any;

/// Inference-mode 2-d batch normalization, PyTorch `nn.BatchNorm2d`.
///
/// Holds the learned affine (`weight` = γ, `bias` = β) and the running
/// statistics. The paper's §5.6 point is embodied here: the module
/// *contains* mutable-looking state, but that state is well understood
/// and hidden behind the module boundary, so the IR stays functional.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    weight: Tensor,
    bias: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    eps: f32,
    num_features: usize,
}

impl BatchNorm2d {
    /// Identity-initialized batch norm (γ=1, β=0, mean=0, var=1).
    pub fn new(num_features: usize) -> BatchNorm2d {
        BatchNorm2d {
            weight: Tensor::ones(&[num_features]),
            bias: Tensor::zeros(&[num_features]),
            running_mean: Tensor::zeros(&[num_features]),
            running_var: Tensor::ones(&[num_features]),
            eps: 1e-5,
            num_features,
        }
    }

    /// Replace the running statistics (e.g. to simulate a trained
    /// network; the fusion benchmark does this so folding is
    /// non-trivial).
    pub fn with_stats(mut self, mean: Tensor, var: Tensor) -> BatchNorm2d {
        assert_eq!(mean.shape(), [self.num_features]);
        assert_eq!(var.shape(), [self.num_features]);
        self.running_mean = mean;
        self.running_var = var;
        self
    }

    /// Replace the affine parameters.
    pub fn with_affine(mut self, weight: Tensor, bias: Tensor) -> BatchNorm2d {
        assert_eq!(weight.shape(), [self.num_features]);
        assert_eq!(bias.shape(), [self.num_features]);
        self.weight = weight;
        self.bias = bias;
        self
    }

    /// γ (scale).
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// β (shift).
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Running mean.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Running variance.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        let g = self.attr("weight")?;
        let b = self.attr("bias")?;
        let m = self.attr("running_mean")?;
        let v = self.attr("running_var")?;
        func::batch_norm(&inputs[0], &g, &b, &m, &v, self.eps as f64)
    }

    fn type_name(&self) -> &'static str {
        "BatchNorm2d"
    }

    fn own_parameters(&self) -> Vec<(String, Tensor)> {
        vec![
            ("weight".to_string(), self.weight.clone()),
            ("bias".to_string(), self.bias.clone()),
            ("running_mean".to_string(), self.running_mean.clone()),
            ("running_var".to_string(), self.running_var.clone()),
        ]
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!("{}, eps={}", self.num_features, self.eps)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Layer normalization over the trailing dimensions, PyTorch
/// `nn.LayerNorm`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    weight: Tensor,
    bias: Tensor,
    normalized_shape: Vec<usize>,
    eps: f32,
}

impl LayerNorm {
    /// Identity-initialized layer norm over `normalized_shape` (the
    /// trailing dims of the input).
    pub fn new(normalized_shape: &[usize]) -> LayerNorm {
        LayerNorm {
            weight: Tensor::ones(normalized_shape),
            bias: Tensor::zeros(normalized_shape),
            normalized_shape: normalized_shape.to_vec(),
            eps: 1e-5,
        }
    }

    /// The normalized trailing shape.
    pub fn normalized_shape(&self) -> &[usize] {
        &self.normalized_shape
    }
}

impl Module for LayerNorm {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        let g = self.attr("weight")?;
        let b = self.attr("bias")?;
        func::layer_norm(
            &inputs[0],
            self.normalized_shape.len(),
            &g,
            &b,
            self.eps as f64,
        )
    }

    fn type_name(&self) -> &'static str {
        "LayerNorm"
    }

    fn own_parameters(&self) -> Vec<(String, Tensor)> {
        vec![
            ("weight".to_string(), self.weight.clone()),
            ("bias".to_string(), self.bias.clone()),
        ]
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!("{:?}, eps={}", self.normalized_shape, self.eps)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_bn_passes_through() {
        let bn = BatchNorm2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2, 1]);
        let y = bn.call(&[Value::Tensor(x.clone())]).unwrap();
        assert!(y.as_tensor().unwrap().allclose(&x, 1e-4));
    }

    #[test]
    fn bn_with_stats_normalizes() {
        let bn = BatchNorm2d::new(1).with_stats(
            Tensor::from_vec(vec![10.0], &[1]),
            Tensor::from_vec(vec![4.0], &[1]),
        );
        let x = Tensor::from_vec(vec![12.0], &[1, 1, 1, 1]);
        let y = bn.call(&[Value::Tensor(x)]).unwrap();
        // (12-10)/2 = 1
        assert!((y.as_tensor().unwrap().as_f32().unwrap()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn bn_parameters_use_pytorch_names() {
        let bn = BatchNorm2d::new(3);
        let names: Vec<String> = bn.own_parameters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["weight", "bias", "running_mean", "running_var"]);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let ln = LayerNorm::new(&[4]);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let y = ln.call(&[Value::Tensor(x)]).unwrap();
        let yd = y.as_tensor().unwrap().as_f32().unwrap();
        let mean: f32 = yd.iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    #[should_panic]
    fn with_stats_validates_shape() {
        let _ = BatchNorm2d::new(2).with_stats(Tensor::ones(&[3]), Tensor::ones(&[2]));
    }
}
