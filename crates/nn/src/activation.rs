//! Activation modules. All stateless leaves wrapping the corresponding
//! [`fx_core::func`] ops.

use fx_core::{func, Module, Result, Value};
use std::any::Any;

macro_rules! activation {
    ($(#[$doc:meta])* $name:ident, $func:path) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl Module for $name {
            fn forward(&self, inputs: &[Value]) -> Result<Value> {
                $func(&inputs[0])
            }
            fn type_name(&self) -> &'static str {
                stringify!($name)
            }
            fn is_builtin_leaf(&self) -> bool {
                true
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
    };
}

activation!(
    /// Rectified linear unit, `nn.ReLU`.
    ReLU,
    func::relu
);
activation!(
    /// Gaussian error linear unit, `nn.GELU`.
    GELU,
    func::gelu
);
activation!(
    /// Scaled exponential linear unit, `nn.SELU` — DeepRecommender's
    /// activation.
    SELU,
    func::selu
);
activation!(
    /// Logistic sigmoid, `nn.Sigmoid`.
    Sigmoid,
    func::sigmoid
);
activation!(
    /// Hyperbolic tangent, `nn.Tanh`.
    Tanh,
    func::tanh
);

/// Leaky ReLU with configurable negative slope, `nn.LeakyReLU`.
#[derive(Debug, Clone, Copy)]
pub struct LeakyReLU {
    /// Slope for negative inputs.
    pub negative_slope: f64,
}

impl Default for LeakyReLU {
    fn default() -> Self {
        LeakyReLU {
            negative_slope: 0.01,
        }
    }
}

impl Module for LeakyReLU {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        func::leaky_relu(&inputs[0], self.negative_slope)
    }

    fn type_name(&self) -> &'static str {
        "LeakyReLU"
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!("negative_slope={}", self.negative_slope)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// ReLU clipped at 6 (`nn.ReLU6`), common in mobile architectures.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReLU6;

impl Module for ReLU6 {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        func::clamp(&inputs[0], 0.0, 6.0)
    }

    fn type_name(&self) -> &'static str {
        "ReLU6"
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::ModuleExt;
    use fx_tensor::Tensor;

    fn run(m: &dyn Module, data: Vec<f32>) -> Vec<f32> {
        let x = Value::Tensor(Tensor::from_vec(data.clone(), &[data.len()]));
        m.call(&[x])
            .unwrap()
            .as_tensor()
            .unwrap()
            .as_f32()
            .unwrap()
            .to_vec()
    }

    #[test]
    fn relu_family() {
        assert_eq!(run(&ReLU, vec![-1.0, 2.0]), vec![0.0, 2.0]);
        assert_eq!(run(&ReLU6, vec![-1.0, 9.0]), vec![0.0, 6.0]);
        assert_eq!(
            run(
                &LeakyReLU {
                    negative_slope: 0.5
                },
                vec![-2.0, 2.0]
            ),
            vec![-1.0, 2.0]
        );
    }

    #[test]
    fn smooth_activations_at_zero() {
        assert_eq!(run(&GELU, vec![0.0]), vec![0.0]);
        assert_eq!(run(&SELU, vec![0.0]), vec![0.0]);
        assert_eq!(run(&Tanh, vec![0.0]), vec![0.0]);
        assert_eq!(run(&Sigmoid, vec![0.0]), vec![0.5]);
    }

    #[test]
    fn all_are_leaves() {
        assert!(ReLU.is_builtin_leaf());
        assert!(GELU.is_builtin_leaf());
        assert!(SELU.is_builtin_leaf());
        assert!(LeakyReLU::default().is_builtin_leaf());
    }
}
