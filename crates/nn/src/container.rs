//! Container modules.

use fx_core::{ArcModule, Module, ModuleExt, Result, Value};
use std::any::Any;

/// A chain of modules applied in order, `nn.Sequential`.
///
/// Children are named `"0"`, `"1"`, ... as in PyTorch. **Not** a leaf:
/// the tracer walks through it, which is how "control flow in a model
/// not dependent on inputs, such as the loop over sequential modules"
/// is eliminated at capture time (paper §5.1).
#[derive(Debug, Clone, Default)]
pub struct Sequential {
    layers: Vec<ArcModule>,
}

impl Sequential {
    /// A sequential container over `layers`.
    pub fn new(layers: Vec<ArcModule>) -> Sequential {
        Sequential { layers }
    }

    /// Append a layer.
    pub fn push(&mut self, layer: ArcModule) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The contained layers.
    pub fn layers(&self) -> &[ArcModule] {
        &self.layers
    }
}

impl Module for Sequential {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        let mut x = inputs
            .first()
            .cloned()
            .unwrap_or(Value::None);
        // The Python-level loop the tracer unrolls away.
        for layer in &self.layers {
            x = layer.call(&[x])?;
        }
        Ok(x)
    }

    fn type_name(&self) -> &'static str {
        "Sequential"
    }

    fn children(&self) -> Vec<(String, ArcModule)> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| (i.to_string(), l.clone()))
            .collect()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The identity module, `nn.Identity` — useful as a structural
/// placeholder (e.g. what fusion leaves behind for a folded-away batch
/// norm).
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Module for Identity {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        Ok(inputs.first().cloned().unwrap_or(Value::None))
    }

    fn type_name(&self) -> &'static str {
        "Identity"
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Linear, ReLU};
    use fx_core::symbolic_trace;
    use fx_tensor::Tensor;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn sequential_applies_in_order() {
        let w1 = Tensor::from_vec(vec![2.0], &[1, 1]);
        let w2 = Tensor::from_vec(vec![3.0], &[1, 1]);
        let s = Sequential::new(vec![
            Arc::new(Linear::from_parts(w1, None)),
            Arc::new(Linear::from_parts(w2, None)),
        ]);
        let y = s
            .call(&[Value::Tensor(Tensor::from_vec(vec![1.0], &[1, 1]))])
            .unwrap();
        assert_eq!(y.as_tensor().unwrap().as_f32().unwrap(), &[6.0]);
    }

    #[test]
    fn tracer_unrolls_the_sequential_loop() {
        let mut rng = StdRng::seed_from_u64(0);
        let s = Sequential::new(vec![
            Arc::new(Linear::new(2, 2, &mut rng)),
            Arc::new(ReLU),
            Arc::new(Linear::new(2, 2, &mut rng)),
        ]);
        let traced = symbolic_trace(&s).unwrap();
        // No loop in the IR: three call_module nodes named 0, 1, 2.
        let code = traced.code();
        assert!(code.contains("getattr(self, \"0\")(x)"), "got {code}");
        assert!(code.contains("getattr(self, \"2\")"));
        traced.graph().lint().unwrap();
    }

    #[test]
    fn identity_passes_through() {
        let v = Value::Int(7);
        assert_eq!(Identity.call(&[v.clone()]).unwrap(), v);
    }

    #[test]
    fn child_names_are_indices() {
        let s = Sequential::new(vec![Arc::new(Identity), Arc::new(Identity)]);
        let names: Vec<String> = s.children().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["0", "1"]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
