//! 2-d convolution layer.

use crate::init;
use fx_core::{func, Module, ModuleExt, Result, Value};
use fx_tensor::Tensor;
use fx_tensor::rng::Rng;
use std::any::Any;

/// 2-d convolution, PyTorch `nn.Conv2d`.
///
/// Construct with [`Conv2d::new`] then refine with the builder methods:
///
/// ```
/// use fx_nn::Conv2d;
/// use fx_tensor::rng::{SeedableRng, StdRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// // ResNet stem: 7x7/2, pad 3, no bias.
/// let conv = Conv2d::new(3, 64, (7, 7), &mut rng)
///     .with_stride((2, 2))
///     .with_padding((3, 3))
///     .without_bias();
/// assert_eq!(conv.weight().shape(), &[64, 3, 7, 7]);
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Tensor,
    bias: Option<Tensor>,
    in_channels: usize,
    out_channels: usize,
    kernel_size: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
    dilation: (usize, usize),
    groups: usize,
}

impl Conv2d {
    /// A convolution with Kaiming-uniform weights, bias, stride 1, no
    /// padding, dilation 1 and a single group.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        kernel_size: (usize, usize),
        rng: &mut R,
    ) -> Conv2d {
        let fan_in = in_channels * kernel_size.0 * kernel_size.1;
        Conv2d {
            weight: init::kaiming_uniform(
                &[out_channels, in_channels, kernel_size.0, kernel_size.1],
                fan_in,
                rng,
            ),
            bias: Some(init::bias_uniform(out_channels, fan_in, rng)),
            in_channels,
            out_channels,
            kernel_size,
            stride: (1, 1),
            padding: (0, 0),
            dilation: (1, 1),
            groups: 1,
        }
    }

    /// Set the stride.
    pub fn with_stride(mut self, stride: (usize, usize)) -> Conv2d {
        self.stride = stride;
        self
    }

    /// Set the zero padding.
    pub fn with_padding(mut self, padding: (usize, usize)) -> Conv2d {
        self.padding = padding;
        self
    }

    /// Set the dilation.
    pub fn with_dilation(mut self, dilation: (usize, usize)) -> Conv2d {
        self.dilation = dilation;
        self
    }

    /// Set the group count, reshaping the weight to
    /// `[out, in/groups, kh, kw]`.
    ///
    /// # Panics
    ///
    /// Panics if channels are not divisible by `groups`.
    pub fn with_groups<R: Rng>(mut self, groups: usize, rng: &mut R) -> Conv2d {
        assert!(
            groups > 0 && self.in_channels % groups == 0 && self.out_channels % groups == 0,
            "channels must divide groups"
        );
        let fan_in = self.in_channels / groups * self.kernel_size.0 * self.kernel_size.1;
        self.weight = init::kaiming_uniform(
            &[
                self.out_channels,
                self.in_channels / groups,
                self.kernel_size.0,
                self.kernel_size.1,
            ],
            fan_in,
            rng,
        );
        self.groups = groups;
        self
    }

    /// Drop the bias (conv layers followed by batch norm, as throughout
    /// ResNet).
    pub fn without_bias(mut self) -> Conv2d {
        self.bias = None;
        self
    }

    /// Build from explicit parameters and geometry — used by the fusion
    /// pass to construct the folded conv.
    pub fn from_parts(
        weight: Tensor,
        bias: Option<Tensor>,
        stride: (usize, usize),
        padding: (usize, usize),
        dilation: (usize, usize),
        groups: usize,
    ) -> Conv2d {
        assert_eq!(weight.rank(), 4, "Conv2d weight must be [O, I/g, kh, kw]");
        let s = weight.shape();
        Conv2d {
            in_channels: s[1] * groups,
            out_channels: s[0],
            kernel_size: (s[2], s[3]),
            weight,
            bias,
            stride,
            padding,
            dilation,
            groups,
        }
    }

    /// The weight tensor `[O, I/g, kh, kw]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias, if present.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }

    /// `(stride, padding, dilation, groups)` geometry.
    pub fn geometry(&self) -> ((usize, usize), (usize, usize), (usize, usize), usize) {
        (self.stride, self.padding, self.dilation, self.groups)
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }
}

impl Module for Conv2d {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        let w = self.attr("weight")?;
        let b = match self.bias {
            Some(_) => Some(self.attr("bias")?),
            None => None,
        };
        func::conv2d(
            &inputs[0],
            &w,
            b.as_ref(),
            self.stride,
            self.padding,
            self.dilation,
            self.groups,
        )
    }

    fn type_name(&self) -> &'static str {
        "Conv2d"
    }

    fn own_parameters(&self) -> Vec<(String, Tensor)> {
        let mut p = vec![("weight".to_string(), self.weight.clone())];
        if let Some(b) = &self.bias {
            p.push(("bias".to_string(), b.clone()));
        }
        p
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!(
            "{}, {}, kernel_size={:?}, stride={:?}, padding={:?}",
            self.in_channels, self.out_channels, self.kernel_size, self.stride, self.padding
        )
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 8, (3, 3), &mut rng)
            .with_stride((2, 2))
            .with_padding((1, 1));
        let x = Value::Tensor(Tensor::ones(&[2, 3, 16, 16]));
        let y = conv.call(&[x]).unwrap();
        assert_eq!(y.as_tensor().unwrap().shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn identity_kernel() {
        // 1x1 conv with identity weight passes channels through.
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]);
        let conv = Conv2d::from_parts(w, None, (1, 1), (0, 0), (1, 1), 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2, 1]);
        let y = conv.call(&[Value::Tensor(x.clone())]).unwrap();
        assert_eq!(y.as_tensor().unwrap(), &x);
    }

    #[test]
    fn grouped_builder() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(4, 8, (3, 3), &mut rng).with_groups(2, &mut rng);
        assert_eq!(conv.weight().shape(), &[8, 2, 3, 3]);
        let y = conv
            .call(&[Value::Tensor(Tensor::ones(&[1, 4, 5, 5]))])
            .unwrap();
        assert_eq!(y.as_tensor().unwrap().shape(), &[1, 8, 3, 3]);
    }

    #[test]
    fn param_count_resnet_stem() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 64, (7, 7), &mut rng).without_bias();
        assert_eq!(fx_core::num_parameters(&conv), 64 * 3 * 7 * 7);
    }
}
