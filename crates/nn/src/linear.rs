//! Fully-connected layer.

use crate::init;
use fx_core::{func, Module, ModuleExt, Result, Value};
use fx_tensor::Tensor;
use fx_tensor::rng::Rng;
use std::any::Any;

/// Affine transform `y = x @ weightᵀ + bias`, PyTorch `nn.Linear`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// A linear layer with Kaiming-uniform weights and uniform bias.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Linear {
        Linear {
            weight: init::kaiming_uniform(&[out_features, in_features], in_features, rng),
            bias: Some(init::bias_uniform(out_features, in_features, rng)),
            in_features,
            out_features,
        }
    }

    /// A linear layer without bias.
    pub fn new_no_bias<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Linear {
        let mut l = Linear::new(in_features, out_features, rng);
        l.bias = None;
        l
    }

    /// Build from explicit parameters (`weight: [out, in]`).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not 2-d or `bias` length mismatches.
    pub fn from_parts(weight: Tensor, bias: Option<Tensor>) -> Linear {
        assert_eq!(weight.rank(), 2, "Linear weight must be [out, in]");
        let (out_features, in_features) = (weight.shape()[0], weight.shape()[1]);
        if let Some(b) = &bias {
            assert_eq!(b.shape(), [out_features], "Linear bias length mismatch");
        }
        Linear {
            weight,
            bias,
            in_features,
            out_features,
        }
    }

    /// The weight matrix `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector, if present.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Module for Linear {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        let w = self.attr("weight")?;
        let b = match self.bias {
            Some(_) => Some(self.attr("bias")?),
            None => None,
        };
        func::linear(&inputs[0], &w, b.as_ref())
    }

    fn type_name(&self) -> &'static str {
        "Linear"
    }

    fn own_parameters(&self) -> Vec<(String, Tensor)> {
        let mut p = vec![("weight".to_string(), self.weight.clone())];
        if let Some(b) = &self.bias {
            p.push(("bias".to_string(), b.clone()));
        }
        p
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!(
            "in_features={}, out_features={}, bias={}",
            self.in_features,
            self.out_features,
            self.bias.is_some()
        )
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    #[test]
    fn forward_matches_manual() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 0.0, -1.0], &[2, 2]);
        let b = Tensor::from_vec(vec![0.5, -0.5], &[2]);
        let l = Linear::from_parts(w, Some(b));
        let x = Value::Tensor(Tensor::from_vec(vec![3.0, 4.0], &[1, 2]));
        let y = l.call(&[x]).unwrap();
        assert_eq!(y.as_tensor().unwrap().as_f32().unwrap(), &[11.5, -4.5]);
    }

    #[test]
    fn no_bias_variant() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new_no_bias(3, 2, &mut rng);
        assert!(l.bias().is_none());
        assert_eq!(l.own_parameters().len(), 1);
        let y = l
            .call(&[Value::Tensor(Tensor::zeros(&[1, 3]))])
            .unwrap();
        assert_eq!(y.as_tensor().unwrap().as_f32().unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(10, 5, &mut rng);
        assert_eq!(fx_core::num_parameters(&l), 10 * 5 + 5);
        assert!(l.extra_repr().contains("in_features=10"));
    }

    #[test]
    #[should_panic(expected = "bias length")]
    fn from_parts_validates() {
        let _ = Linear::from_parts(Tensor::ones(&[2, 3]), Some(Tensor::ones(&[5])));
    }
}
