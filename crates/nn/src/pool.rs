//! Pooling modules.

use fx_core::{func, Module, Result, Value};
use std::any::Any;

/// Max pooling, `nn.MaxPool2d`.
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel_size: (usize, usize),
    /// Window stride.
    pub stride: (usize, usize),
    /// Zero padding.
    pub padding: (usize, usize),
}

impl MaxPool2d {
    /// Max pooling with stride equal to the kernel and no padding.
    pub fn new(kernel_size: (usize, usize)) -> MaxPool2d {
        MaxPool2d {
            kernel_size,
            stride: kernel_size,
            padding: (0, 0),
        }
    }

    /// Set the stride.
    pub fn with_stride(mut self, stride: (usize, usize)) -> MaxPool2d {
        self.stride = stride;
        self
    }

    /// Set the padding.
    pub fn with_padding(mut self, padding: (usize, usize)) -> MaxPool2d {
        self.padding = padding;
        self
    }
}

impl Module for MaxPool2d {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        func::max_pool2d(&inputs[0], self.kernel_size, self.stride, self.padding)
    }

    fn type_name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!(
            "kernel_size={:?}, stride={:?}, padding={:?}",
            self.kernel_size, self.stride, self.padding
        )
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Average pooling, `nn.AvgPool2d`.
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    /// Window size.
    pub kernel_size: (usize, usize),
    /// Window stride.
    pub stride: (usize, usize),
    /// Zero padding.
    pub padding: (usize, usize),
}

impl AvgPool2d {
    /// Average pooling with stride equal to the kernel.
    pub fn new(kernel_size: (usize, usize)) -> AvgPool2d {
        AvgPool2d {
            kernel_size,
            stride: kernel_size,
            padding: (0, 0),
        }
    }
}

impl Module for AvgPool2d {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        func::avg_pool2d(&inputs[0], self.kernel_size, self.stride, self.padding)
    }

    fn type_name(&self) -> &'static str {
        "AvgPool2d"
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Adaptive average pooling to a fixed output size,
/// `nn.AdaptiveAvgPool2d`.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveAvgPool2d {
    /// Target `(h, w)`.
    pub output_size: (usize, usize),
}

impl AdaptiveAvgPool2d {
    /// Pool to `output_size`; `(1, 1)` is global average pooling.
    pub fn new(output_size: (usize, usize)) -> AdaptiveAvgPool2d {
        AdaptiveAvgPool2d { output_size }
    }
}

impl Module for AdaptiveAvgPool2d {
    fn forward(&self, inputs: &[Value]) -> Result<Value> {
        func::adaptive_avg_pool2d(&inputs[0], self.output_size)
    }

    fn type_name(&self) -> &'static str {
        "AdaptiveAvgPool2d"
    }

    fn is_builtin_leaf(&self) -> bool {
        true
    }

    fn extra_repr(&self) -> String {
        format!("output_size={:?}", self.output_size)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::ModuleExt;
    use fx_tensor::Tensor;

    #[test]
    fn resnet_stem_pool() {
        let pool = MaxPool2d::new((3, 3)).with_stride((2, 2)).with_padding((1, 1));
        let x = Value::Tensor(Tensor::ones(&[1, 64, 112, 112]));
        let y = pool.call(&[x]).unwrap();
        assert_eq!(y.as_tensor().unwrap().shape(), &[1, 64, 56, 56]);
    }

    #[test]
    fn global_average_pool() {
        let gap = AdaptiveAvgPool2d::new((1, 1));
        let x = Value::Tensor(Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]));
        let y = gap.call(&[x]).unwrap();
        assert_eq!(y.as_tensor().unwrap().as_f32().unwrap(), &[4.0]);
    }

    #[test]
    fn avg_pool_module() {
        let pool = AvgPool2d::new((2, 2));
        let x = Value::Tensor(Tensor::ones(&[1, 1, 4, 4]));
        let y = pool.call(&[x]).unwrap();
        assert_eq!(y.as_tensor().unwrap().shape(), &[1, 1, 2, 2]);
    }
}
