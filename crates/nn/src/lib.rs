//! # fx-nn — the layer library
//!
//! Standard neural-network modules implementing the
//! [`Module`](fx_core::Module) protocol from `fx-core`: `Linear`,
//! `Conv2d`, `BatchNorm2d`, activations, pooling, containers and
//! friends.
//!
//! All layers are **built-in leaves** (`is_builtin_leaf() == true`
//! except containers): the default tracer records them as opaque
//! `call_module` nodes, "since this creates a trace of standard,
//! understandable primitives" (paper §5.2). Their forwards fetch
//! parameters through [`ModuleExt::attr`](fx_core::ModuleExt) and route
//! math through [`fx_core::func`], so a custom tracer that marks them
//! non-leaf traces straight through to `get_attr` + `call_function`
//! nodes — the configurable level-of-detail the paper describes.
//!
//! ```
//! use fx_nn::{Linear, ReLU, Sequential};
//! use fx_core::symbolic_trace;
//! use fx_tensor::rng::{SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = Sequential::new(vec![
//!     std::sync::Arc::new(Linear::new(4, 8, &mut rng)),
//!     std::sync::Arc::new(ReLU),
//!     std::sync::Arc::new(Linear::new(8, 2, &mut rng)),
//! ]);
//! let traced = symbolic_trace(&model).unwrap();
//! // Sequential is traced *through*; Linear/ReLU become call_module nodes.
//! assert_eq!(traced.graph().len(), 5); // x, 0, 1, 2, output
//! ```

#![warn(missing_docs)]

mod activation;
mod container;
mod conv;
pub mod init;
mod linear;
mod misc;
mod norm;
mod pool;

pub use activation::{LeakyReLU, ReLU, ReLU6, Sigmoid, Tanh, GELU, SELU};
pub use container::{Identity, Sequential};
pub use conv::Conv2d;
pub use linear::Linear;
pub use misc::{Dropout, Embedding, Flatten};
pub use norm::{BatchNorm2d, LayerNorm};
pub use pool::{AdaptiveAvgPool2d, AvgPool2d, MaxPool2d};
