//! Symbolic shape propagation — the "shape propagation via symbolic
//! expressions" system the paper reports as in development on top of
//! torch.fx (§6.3).
//!
//! Where [`infer_shapes`](crate::shape_prop::infer_shapes) needs every
//! input dimension as a number, this pass propagates **symbolic
//! dimensions**: an input can be declared `[N, 3, 224, 224]` with `N` a
//! free variable, and every node's output shape comes out as an
//! expression over `N` (e.g. ResNet's logits as `[N, 1000]`). Because
//! the IR has no control flow, propagation is a single forward pass and
//! the expressions never need widening to "dynamic" — the exact contrast
//! the paper draws against loop-carried shapes in Figure 4.

use fx_core::{Arg, Error, GraphModule, Node, NodeId, Opcode, Result};
use fx_nn::{AdaptiveAvgPool2d, AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d};
use std::collections::HashMap;
use std::fmt;

/// A symbolic dimension: a constant, a variable, or an arithmetic
/// expression over them. Construction simplifies constant subtrees
/// eagerly, so fully-concrete inputs degrade to plain numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymDim {
    /// A known size.
    Const(usize),
    /// A free variable such as the batch size.
    Var(String),
    /// `a + b`.
    Add(Box<SymDim>, Box<SymDim>),
    /// `a - b` (saturating at evaluation).
    Sub(Box<SymDim>, Box<SymDim>),
    /// `a * b`.
    Mul(Box<SymDim>, Box<SymDim>),
    /// `a / b`, floor division.
    FloorDiv(Box<SymDim>, Box<SymDim>),
}

impl SymDim {
    /// A named variable.
    pub fn var(name: &str) -> SymDim {
        SymDim::Var(name.to_string())
    }

    /// Simplifying addition.
    pub fn add(a: SymDim, b: SymDim) -> SymDim {
        match (a, b) {
            (SymDim::Const(x), SymDim::Const(y)) => SymDim::Const(x + y),
            (SymDim::Const(0), other) | (other, SymDim::Const(0)) => other,
            (a, b) => SymDim::Add(Box::new(a), Box::new(b)),
        }
    }

    /// Simplifying subtraction.
    pub fn sub(a: SymDim, b: SymDim) -> SymDim {
        match (a, b) {
            (SymDim::Const(x), SymDim::Const(y)) => SymDim::Const(x.saturating_sub(y)),
            (a, SymDim::Const(0)) => a,
            (a, b) => SymDim::Sub(Box::new(a), Box::new(b)),
        }
    }

    /// Simplifying multiplication.
    pub fn mul(a: SymDim, b: SymDim) -> SymDim {
        match (a, b) {
            (SymDim::Const(x), SymDim::Const(y)) => SymDim::Const(x * y),
            (SymDim::Const(1), other) | (other, SymDim::Const(1)) => other,
            (z @ SymDim::Const(0), _) | (_, z @ SymDim::Const(0)) => z,
            (a, b) => SymDim::Mul(Box::new(a), Box::new(b)),
        }
    }

    /// Simplifying floor division.
    pub fn floor_div(a: SymDim, b: SymDim) -> SymDim {
        match (a, b) {
            (SymDim::Const(x), SymDim::Const(y)) if y != 0 => SymDim::Const(x / y),
            (a, SymDim::Const(1)) => a,
            (a, b) => SymDim::FloorDiv(Box::new(a), Box::new(b)),
        }
    }

    /// The constant value, if fully concrete.
    pub fn as_const(&self) -> Option<usize> {
        match self {
            SymDim::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Evaluate under variable bindings.
    pub fn eval(&self, bindings: &HashMap<String, usize>) -> Result<usize> {
        Ok(match self {
            SymDim::Const(v) => *v,
            SymDim::Var(name) => *bindings.get(name).ok_or_else(|| {
                Error::Graph(format!("symbolic shape: unbound variable `{name}`"))
            })?,
            SymDim::Add(a, b) => a.eval(bindings)? + b.eval(bindings)?,
            SymDim::Sub(a, b) => a.eval(bindings)?.saturating_sub(b.eval(bindings)?),
            SymDim::Mul(a, b) => a.eval(bindings)? * b.eval(bindings)?,
            SymDim::FloorDiv(a, b) => {
                let d = b.eval(bindings)?;
                if d == 0 {
                    return Err(Error::Graph(
                        "symbolic shape: division by zero".to_string(),
                    ));
                }
                a.eval(bindings)? / d
            }
        })
    }
}

impl fmt::Display for SymDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymDim::Const(v) => write!(f, "{v}"),
            SymDim::Var(n) => write!(f, "{n}"),
            SymDim::Add(a, b) => write!(f, "({a} + {b})"),
            SymDim::Sub(a, b) => write!(f, "({a} - {b})"),
            SymDim::Mul(a, b) => write!(f, "({a} * {b})"),
            SymDim::FloorDiv(a, b) => write!(f, "({a} // {b})"),
        }
    }
}

impl From<usize> for SymDim {
    fn from(v: usize) -> SymDim {
        SymDim::Const(v)
    }
}

/// A symbolic tensor shape.
pub type SymShape = Vec<SymDim>;

/// Render a symbolic shape like `[N, 64, (H // 2), (W // 2)]`.
pub fn display_sym_shape(shape: &SymShape) -> String {
    format!(
        "[{}]",
        shape
            .iter()
            .map(SymDim::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    )
}

fn conv_extent(input: SymDim, pad: usize, dilation: usize, kernel: usize, stride: usize) -> SymDim {
    // (input + 2p - d*(k-1) - 1) / s + 1
    let adj = SymDim::sub(
        SymDim::add(input, SymDim::Const(2 * pad)),
        SymDim::Const(dilation * (kernel - 1) + 1),
    );
    SymDim::add(
        SymDim::floor_div(adj, SymDim::Const(stride)),
        SymDim::Const(1),
    )
}

fn err_at(node: &Node, why: &str) -> Error {
    Error::Graph(format!(
        "symbolic shapes: node `{}` ({}): {why}",
        node.name(),
        node.target()
    ))
}

/// Propagate symbolic input shapes through the graph. Returns the
/// symbolic shape of every tensor-producing node by name.
pub fn infer_sym_shapes(
    gm: &GraphModule,
    input_shapes: &[SymShape],
) -> Result<HashMap<String, SymShape>> {
    let mut env: HashMap<NodeId, SymShape> = HashMap::new();
    let mut out = HashMap::new();
    let mut next_input = 0usize;
    for node in gm.graph().nodes() {
        let shape: SymShape = match node.op() {
            Opcode::Placeholder => {
                let s = input_shapes.get(next_input).ok_or_else(|| {
                    err_at(node, "missing symbolic input shape")
                })?;
                next_input += 1;
                s.clone()
            }
            Opcode::GetAttr => match gm.get_attr_tensor(node.target()) {
                Some(t) => t.shape().iter().map(|&d| SymDim::Const(d)).collect(),
                None => continue,
            },
            Opcode::Output => {
                if let Some(s) = node
                    .args()
                    .first()
                    .and_then(Arg::as_node)
                    .and_then(|id| env.get(&id))
                {
                    out.insert(node.name().to_string(), s.clone());
                }
                break;
            }
            Opcode::CallModule => sym_module(gm, node, &env)?,
            Opcode::CallFunction | Opcode::CallMethod => sym_call(node, &env)?,
        };
        out.insert(node.name().to_string(), shape.clone());
        env.insert(node.id(), shape);
    }
    Ok(out)
}

fn input_shape(node: &Node, env: &HashMap<NodeId, SymShape>) -> Result<SymShape> {
    node.args()
        .first()
        .and_then(Arg::as_node)
        .and_then(|id| env.get(&id).cloned())
        .ok_or_else(|| err_at(node, "needs a symbolic tensor input"))
}

fn sym_module(
    gm: &GraphModule,
    node: &Node,
    env: &HashMap<NodeId, SymShape>,
) -> Result<SymShape> {
    let module = gm
        .get_module(node.target())
        .ok_or_else(|| err_at(node, "missing submodule"))?;
    let any = module.as_any();
    let x = input_shape(node, env)?;
    if let Some(c) = any.downcast_ref::<Conv2d>() {
        if x.len() != 4 {
            return Err(err_at(node, "conv input must be 4-d"));
        }
        let w = c.weight().shape();
        let (stride, padding, dilation, _) = c.geometry();
        Ok(vec![
            x[0].clone(),
            SymDim::Const(w[0]),
            conv_extent(x[2].clone(), padding.0, dilation.0, w[2], stride.0),
            conv_extent(x[3].clone(), padding.1, dilation.1, w[3], stride.1),
        ])
    } else if let Some(l) = any.downcast_ref::<Linear>() {
        let mut s = x;
        *s.last_mut().ok_or_else(|| err_at(node, "rank 0"))? = SymDim::Const(l.out_features());
        Ok(s)
    } else if let Some(p) = any.downcast_ref::<MaxPool2d>() {
        pool_sym(&x, p.kernel_size, p.stride, p.padding, node)
    } else if let Some(p) = any.downcast_ref::<AvgPool2d>() {
        pool_sym(&x, p.kernel_size, p.stride, p.padding, node)
    } else if let Some(p) = any.downcast_ref::<AdaptiveAvgPool2d>() {
        if x.len() != 4 {
            return Err(err_at(node, "pool input must be 4-d"));
        }
        Ok(vec![
            x[0].clone(),
            x[1].clone(),
            SymDim::Const(p.output_size.0),
            SymDim::Const(p.output_size.1),
        ])
    } else if let Some(f) = any.downcast_ref::<Flatten>() {
        flatten_sym(&x, f.start_dim, f.end_dim, node)
    } else {
        // Shape-preserving modules (norms, activations, dropout,
        // observers, identity).
        Ok(x)
    }
}

fn pool_sym(
    x: &SymShape,
    k: (usize, usize),
    s: (usize, usize),
    p: (usize, usize),
    node: &Node,
) -> Result<SymShape> {
    if x.len() != 4 {
        return Err(err_at(node, "pool input must be 4-d"));
    }
    Ok(vec![
        x[0].clone(),
        x[1].clone(),
        conv_extent(x[2].clone(), p.0, 1, k.0, s.0),
        conv_extent(x[3].clone(), p.1, 1, k.1, s.1),
    ])
}

fn flatten_sym(x: &SymShape, start: i64, end: i64, node: &Node) -> Result<SymShape> {
    let rank = x.len().max(1);
    let norm = |d: i64| -> Result<usize> {
        let v = if d < 0 { d + rank as i64 } else { d };
        if v < 0 || v >= rank as i64 {
            return Err(err_at(node, "flatten dim out of range"));
        }
        Ok(v as usize)
    };
    let s = norm(start)?;
    let e = norm(end)?;
    let mut out: SymShape = x[..s].to_vec();
    let mut prod = SymDim::Const(1);
    for d in &x[s..=e] {
        prod = SymDim::mul(prod, d.clone());
    }
    out.push(prod);
    out.extend_from_slice(&x[e + 1..]);
    Ok(out)
}

fn sym_call(node: &Node, env: &HashMap<NodeId, SymShape>) -> Result<SymShape> {
    match node.target() {
        // Shape-preserving.
        "relu" | "gelu" | "selu" | "sigmoid" | "tanh" | "neg" | "exp" | "log" | "sqrt"
        | "rsqrt" | "abs" | "clamp" | "dropout" | "softmax" | "log_softmax" | "batch_norm"
        | "layer_norm" | "quantize_per_tensor" | "dequantize" | "contiguous" => {
            input_shape(node, env)
        }
        "add" | "sub" | "mul" | "div" | "maximum" | "minimum" => {
            // Symbolic broadcasting: require equal ranks with matching
            // dims (or a scalar immediate operand).
            let shapes: Vec<SymShape> = node
                .args()
                .iter()
                .filter_map(Arg::as_node)
                .filter_map(|id| env.get(&id).cloned())
                .collect();
            match shapes.len() {
                1 => Ok(shapes.into_iter().next().unwrap()),
                2 => {
                    if shapes[0] == shapes[1] {
                        Ok(shapes.into_iter().next().unwrap())
                    } else if shapes[1].is_empty() {
                        Ok(shapes.into_iter().next().unwrap())
                    } else if shapes[0].is_empty() {
                        Ok(shapes.into_iter().nth(1).unwrap())
                    } else {
                        Err(err_at(
                            node,
                            "symbolic broadcasting only supports equal shapes or scalars",
                        ))
                    }
                }
                _ => Err(err_at(node, "binary op needs tensor operands")),
            }
        }
        "linear" => {
            let mut x = input_shape(node, env)?;
            let w = node
                .args()
                .get(1)
                .and_then(Arg::as_node)
                .and_then(|id| env.get(&id).cloned())
                .ok_or_else(|| err_at(node, "linear needs a weight shape"))?;
            *x.last_mut().ok_or_else(|| err_at(node, "rank 0"))? = w[0].clone();
            Ok(x)
        }
        "flatten" => {
            let x = input_shape(node, env)?;
            let s = node.args().get(1).and_then(Arg::as_int).unwrap_or(0);
            let e = node.args().get(2).and_then(Arg::as_int).unwrap_or(-1);
            flatten_sym(&x, s, e, node)
        }
        other => Err(err_at(
            node,
            &format!("no symbolic transfer function for `{other}`"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape_prop::infer_shapes;
    use fx_core::symbolic_trace;
    use fx_models::{resnet_tiny, Mlp};
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    #[test]
    fn sym_dim_algebra_simplifies_constants() {
        let d = SymDim::add(SymDim::Const(2), SymDim::Const(3));
        assert_eq!(d, SymDim::Const(5));
        let d = SymDim::mul(SymDim::var("N"), SymDim::Const(1));
        assert_eq!(d, SymDim::var("N"));
        let d = SymDim::mul(SymDim::var("N"), SymDim::Const(0));
        assert_eq!(d, SymDim::Const(0));
        let d = SymDim::floor_div(SymDim::Const(7), SymDim::Const(2));
        assert_eq!(d, SymDim::Const(3));
    }

    #[test]
    fn sym_dim_eval_and_display() {
        let d = SymDim::add(
            SymDim::mul(SymDim::var("N"), SymDim::Const(2)),
            SymDim::Const(1),
        );
        assert_eq!(d.to_string(), "((N * 2) + 1)");
        let mut b = HashMap::new();
        b.insert("N".to_string(), 5);
        assert_eq!(d.eval(&b).unwrap(), 11);
        assert!(SymDim::var("M").eval(&b).is_err());
    }

    #[test]
    fn resnet_batch_stays_symbolic_end_to_end() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = resnet_tiny(&mut rng);
        let gm = symbolic_trace(&model).unwrap();
        let input: SymShape = vec![
            SymDim::var("N"),
            SymDim::Const(3),
            SymDim::Const(32),
            SymDim::Const(32),
        ];
        let shapes = infer_sym_shapes(&gm, &[input]).unwrap();
        // The classifier output is [N, 10] with N still free.
        let fc = &shapes["fc"];
        assert_eq!(fc.len(), 2);
        assert_eq!(fc[0], SymDim::var("N"));
        assert_eq!(fc[1], SymDim::Const(10));
        // Spatial dims resolved to constants along the way.
        let conv1 = &shapes["conv1"];
        assert_eq!(conv1[2], SymDim::Const(16));
    }

    #[test]
    fn symbolic_agrees_with_concrete_when_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = resnet_tiny(&mut rng);
        let gm = symbolic_trace(&model).unwrap();
        let input: SymShape = vec![
            SymDim::var("N"),
            SymDim::Const(3),
            SymDim::Const(32),
            SymDim::Const(32),
        ];
        let sym = infer_sym_shapes(&gm, &[input]).unwrap();
        let mut gm2 = gm.clone();
        let concrete = infer_shapes(&mut gm2, &[vec![4, 3, 32, 32]]).unwrap();
        let mut bindings = HashMap::new();
        bindings.insert("N".to_string(), 4usize);
        for (name, cshape) in &concrete {
            let Some(sshape) = sym.get(name) else { continue };
            let evaled: Vec<usize> = sshape
                .iter()
                .map(|d| d.eval(&bindings).unwrap())
                .collect();
            assert_eq!(&evaled, cshape, "disagreement at `{name}`");
        }
    }

    #[test]
    fn mlp_with_symbolic_batch_and_display() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&[8, 16, 4], &mut rng);
        let gm = symbolic_trace(&mlp).unwrap();
        let shapes =
            infer_sym_shapes(&gm, &[vec![SymDim::var("batch"), SymDim::Const(8)]]).unwrap();
        assert_eq!(display_sym_shape(&shapes["fc1"]), "[batch, 4]");
    }

    #[test]
    fn unsupported_op_is_a_clear_error() {
        let gm = fx_core::symbolic_trace_fn(1, |xs| {
            fx_core::func::transpose(&xs[0], 0, 1)
        })
        .unwrap();
        let err = infer_sym_shapes(&gm, &[vec![SymDim::var("A"), SymDim::var("B")]]).unwrap_err();
        assert!(err.to_string().contains("transpose"));
    }
}
