//! Graph splitting by operator support — the behaviour the paper
//! describes for the fx2trt backend (§6.4): "automatic splitting of the
//! model based on TensorRT's supported operators and automatically
//! scheduling unsupported operations in non-optimized blocks".
//!
//! [`split_by`] partitions the node sequence into maximal runs with the
//! same supportedness, extracts each run into a child [`GraphModule`]
//! (`submod_0`, `submod_1`, ...), and returns a parent module that calls
//! them in order. Running the parent is observably identical to running
//! the original.

use fx_core::{
    Arg, Error, Graph, GraphModule, Node, NodeId, Opcode, Result,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Metadata about one extracted partition.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Submodule name in the parent (`submod_<i>`).
    pub name: String,
    /// Whether the partition's ops satisfied the predicate.
    pub supported: bool,
    /// Number of compute nodes inside.
    pub node_count: usize,
}

/// Result of [`split_by`].
#[derive(Debug)]
pub struct SplitResult {
    /// Parent module whose graph is a chain of `call_module` nodes.
    pub module: GraphModule,
    /// Partition descriptors, in execution order.
    pub partitions: Vec<Partition>,
}

/// Split `gm` into supported / unsupported partitions according to
/// `supported`.
pub fn split_by(gm: &GraphModule, supported: &dyn Fn(&Node) -> bool) -> Result<SplitResult> {
    let graph = gm.graph();
    // 1. Group consecutive compute nodes by supportedness.
    let mut groups: Vec<(bool, Vec<NodeId>)> = Vec::new();
    for node in graph.nodes() {
        if matches!(
            node.op(),
            Opcode::Placeholder | Opcode::Output | Opcode::GetAttr
        ) {
            continue;
        }
        let s = supported(node);
        match groups.last_mut() {
            Some((kind, members)) if *kind == s => members.push(node.id()),
            _ => groups.push((s, vec![node.id()])),
        }
    }

    // 2. Parent graph scaffolding.
    let mut parent = Graph::new();
    let mut parent_modules: BTreeMap<String, fx_core::ArcModule> = BTreeMap::new();
    let mut parent_attrs: BTreeMap<String, fx_tensor::Tensor> = BTreeMap::new();
    // old node id -> arg in the parent graph
    let mut parent_map: HashMap<NodeId, Arg> = HashMap::new();
    for ph in graph.placeholders() {
        let name = graph.node(ph).target().to_string();
        let new = parent.placeholder(&name);
        parent_map.insert(ph, Arg::Node(new));
    }

    let mut partitions = Vec::new();
    for (gi, (kind, members)) in groups.iter().enumerate() {
        let member_set: std::collections::HashSet<NodeId> = members.iter().copied().collect();

        // External tensor inputs: args referencing nodes outside the
        // group that aren't get_attrs (those are copied inside).
        let mut externals: Vec<NodeId> = Vec::new();
        for &id in members {
            for dep in graph.node(id).input_nodes() {
                let dn = graph.node(dep);
                if member_set.contains(&dep) || dn.op() == Opcode::GetAttr {
                    continue;
                }
                if !externals.contains(&dep) {
                    externals.push(dep);
                }
            }
        }

        // Outputs: members used outside the group.
        let mut outputs: Vec<NodeId> = Vec::new();
        for &id in members {
            let escapes = graph
                .users(id)
                .iter()
                .any(|u| !member_set.contains(u));
            if escapes {
                outputs.push(id);
            }
        }
        if outputs.is_empty() {
            // Fully dead partition; still emit it for structural fidelity,
            // returning its last node.
            outputs.push(*members.last().expect("groups are non-empty"));
        }

        // 3. Build the subgraph.
        let mut sub = Graph::new();
        let mut sub_modules: BTreeMap<String, fx_core::ArcModule> = BTreeMap::new();
        let mut sub_attrs: BTreeMap<String, fx_tensor::Tensor> = BTreeMap::new();
        let mut sub_map: HashMap<NodeId, Arg> = HashMap::new();
        let mut input_names = Vec::new();
        for &ext in &externals {
            let name = graph.node(ext).name().to_string();
            let ph = sub.placeholder(&name);
            sub_map.insert(ext, Arg::Node(ph));
            input_names.push(name);
        }
        for &id in members {
            let node = graph.node(id);
            // Copy get_attr dependencies on demand.
            for dep in node.input_nodes() {
                if sub_map.contains_key(&dep) {
                    continue;
                }
                let dn = graph.node(dep);
                if dn.op() == Opcode::GetAttr {
                    let g = sub.get_attr(dn.target());
                    sub_map.insert(dep, Arg::Node(g));
                    if let Some(t) = gm.get_attr_tensor(dn.target()) {
                        sub_attrs.insert(dn.target().to_string(), t.clone());
                    }
                }
            }
            let remap = |a: &Arg| remap_arg(a, &sub_map);
            let args = node.args().iter().map(remap).collect::<Result<Vec<_>>>()?;
            let kwargs = node
                .kwargs()
                .iter()
                .map(|(k, a)| Ok((k.clone(), remap(a)?)))
                .collect::<Result<Vec<_>>>()?;
            let new =
                sub.create_node(node.op(), node.target(), args, kwargs, node.name());
            sub_map.insert(id, Arg::Node(new));
            if node.op() == Opcode::CallModule {
                let m = gm.get_module(node.target()).cloned().ok_or_else(|| {
                    Error::Module(format!("missing submodule `{}`", node.target()))
                })?;
                sub_modules.insert(node.target().to_string(), m);
            }
        }
        let out_args: Vec<Arg> = outputs
            .iter()
            .map(|id| sub_map.get(id).cloned().expect("outputs are members"))
            .collect();
        if out_args.len() == 1 {
            sub.output(out_args.into_iter().next().unwrap());
        } else {
            sub.output(Arg::Tuple(out_args));
        }
        let sub_gm = GraphModule::new(sub, sub_modules, sub_attrs, input_names)?;

        // 4. Call it from the parent.
        let name = format!("submod_{gi}");
        let call_args: Vec<Arg> = externals
            .iter()
            .map(|ext| {
                parent_map.get(ext).cloned().ok_or_else(|| {
                    // get_attr used directly at parent level.
                    Error::Graph(format!(
                        "split_by: external input `{}` not materialized in parent",
                        graph.node(*ext).name()
                    ))
                })
            })
            .collect::<Result<_>>()?;
        let call = parent.call_module(&name, call_args, vec![]);
        if outputs.len() == 1 {
            parent_map.insert(outputs[0], Arg::Node(call));
        } else {
            for (j, &out) in outputs.iter().enumerate() {
                let item = parent.call_function(
                    "getitem",
                    vec![Arg::Node(call), Arg::Int(j as i64)],
                    vec![],
                );
                parent_map.insert(out, Arg::Node(item));
            }
        }
        parent_modules.insert(name.clone(), Arc::new(sub_gm));
        partitions.push(Partition {
            name,
            supported: *kind,
            node_count: members.len(),
        });
    }

    // 5. Parent output (handle direct get_attr references too).
    let out_node = graph
        .output_node()
        .ok_or_else(|| Error::Graph("split_by: graph has no output".to_string()))?;
    for dep in out_node.input_nodes() {
        if !parent_map.contains_key(&dep) && graph.node(dep).op() == Opcode::GetAttr {
            let target = graph.node(dep).target().to_string();
            let g = parent.get_attr(&target);
            if let Some(t) = gm.get_attr_tensor(&target) {
                parent_attrs.insert(target, t.clone());
            }
            parent_map.insert(dep, Arg::Node(g));
        }
    }
    let out_arg = remap_arg(&out_node.args()[0], &parent_map)?;
    parent.output(out_arg);

    let input_names = gm.placeholder_names();
    let module = GraphModule::new(parent, parent_modules, parent_attrs, input_names)?;
    fx_core::validate::after_pass(&module, "split_by")?;
    Ok(SplitResult { module, partitions })
}

fn remap_arg(arg: &Arg, map: &HashMap<NodeId, Arg>) -> Result<Arg> {
    Ok(match arg {
        Arg::Node(id) => map
            .get(id)
            .cloned()
            .ok_or_else(|| Error::Graph(format!("split_by: unmapped node %{}", id.index())))?,
        Arg::List(items) => Arg::List(
            items
                .iter()
                .map(|a| remap_arg(a, map))
                .collect::<Result<_>>()?,
        ),
        Arg::Tuple(items) => Arg::Tuple(
            items
                .iter()
                .map(|a| remap_arg(a, map))
                .collect::<Result<_>>()?,
        ),
        other => other.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{func, symbolic_trace, symbolic_trace_fn, Value};
    use fx_models::Mlp;
    use fx_tensor::Tensor;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    #[test]
    fn alternating_support_produces_three_partitions() {
        let gm = symbolic_trace_fn(1, |xs| {
            let a = func::relu(&xs[0])?; // supported
            let b = func::selu(&a)?; // unsupported
            func::relu(&b) // supported
        })
        .unwrap();
        let split = split_by(&gm, &|n| n.target() != "selu").unwrap();
        assert_eq!(split.partitions.len(), 3);
        assert_eq!(
            split
                .partitions
                .iter()
                .map(|p| p.supported)
                .collect::<Vec<_>>(),
            vec![true, false, true]
        );
        let x = Value::Tensor(Tensor::from_vec(vec![-1.0, 0.5], &[2]));
        let y0 = gm.run(&[x.clone()]).unwrap();
        let y1 = split.module.run(&[x]).unwrap();
        assert_eq!(y0, y1);
    }

    #[test]
    fn split_mlp_with_modules_and_attrs() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[8, 16, 16, 4], &mut rng);
        let gm = symbolic_trace(&mlp).unwrap();
        // Mark the middle linear unsupported.
        let split = split_by(&gm, &|n| n.target() != "fc1").unwrap();
        assert!(split.partitions.len() >= 2);
        split.module.graph().lint().unwrap();
        let x = Value::Tensor(Tensor::rand_uniform(&[2, 8], -1.0, 1.0, &mut rng));
        let y0 = gm.run(&[x.clone()]).unwrap();
        let y1 = split.module.run(&[x]).unwrap();
        assert!(y0
            .as_tensor()
            .unwrap()
            .allclose(y1.as_tensor().unwrap(), 1e-5));
    }

    #[test]
    fn multi_output_partition_uses_getitem() {
        // First group produces two values consumed by the second group.
        let gm = symbolic_trace_fn(1, |xs| {
            let a = func::relu(&xs[0])?; // supported
            let b = func::neg(&xs[0])?; // supported
            let c = func::selu(&a)?; // unsupported, uses a
            func::add(&c, &b) // unsupported, uses b
        })
        .unwrap();
        let split = split_by(&gm, &|n| matches!(n.target(), "relu" | "neg")).unwrap();
        assert_eq!(split.partitions.len(), 2);
        assert!(split
            .module
            .graph()
            .nodes()
            .any(|n| n.target() == "getitem"));
        let x = Value::Tensor(Tensor::from_vec(vec![0.5, -2.0], &[2]));
        let y0 = gm.run(&[x.clone()]).unwrap();
        let y1 = split.module.run(&[x]).unwrap();
        assert_eq!(y0, y1);
    }

    #[test]
    fn single_partition_when_everything_supported() {
        let gm = symbolic_trace_fn(1, |xs| func::relu(&xs[0])?.neg()).unwrap();
        let split = split_by(&gm, &|_| true).unwrap();
        assert_eq!(split.partitions.len(), 1);
        assert!(split.partitions[0].supported);
        assert_eq!(split.partitions[0].node_count, 2);
    }
}
