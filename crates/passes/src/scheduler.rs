//! Two-stream overlap scheduling — the paper's §6.2.3 "program
//! scheduling and partitioning" case study: "overlapping of operations
//! that occur synchronously on the CPU with operations that occur
//! asynchronously on the GPU".
//!
//! Given a cost model for each stream and a predicate choosing which
//! nodes to offload, [`schedule_overlap`] performs dependency-respecting
//! list scheduling on two resources and reports the overlapped makespan
//! against the fully-sequential baseline.

use crate::estimator::{node_cost, DeviceSpec};
use fx_core::executor::RunProfile;
use fx_core::{GraphModule, Node, NodeId, Opcode, Result};
use std::collections::HashMap;
use std::fmt;

/// Which resource an op runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// The synchronous host stream.
    Host,
    /// The asynchronous device stream.
    Device,
}

/// One scheduled op with its time window.
#[derive(Debug, Clone)]
pub struct ScheduledOp {
    /// Node name.
    pub name: String,
    /// Assigned stream.
    pub stream: Stream,
    /// Start time, seconds.
    pub start: f64,
    /// End time, seconds.
    pub end: f64,
}

/// A complete two-stream schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Ops in issue order.
    pub ops: Vec<ScheduledOp>,
    /// Makespan with overlap, seconds.
    pub makespan: f64,
    /// Makespan if everything ran back-to-back, seconds.
    pub sequential: f64,
}

impl Schedule {
    /// `sequential / makespan` — ≥ 1; how much pipelining bought.
    pub fn speedup(&self) -> f64 {
        if self.makespan > 0.0 {
            self.sequential / self.makespan
        } else {
            1.0
        }
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "overlapped {:.1} us vs sequential {:.1} us (speedup {:.2}x)",
            self.makespan * 1e6,
            self.sequential * 1e6,
            self.speedup()
        )?;
        for op in &self.ops {
            writeln!(
                f,
                "  [{:>6.1}..{:>6.1} us] {:<8} {}",
                op.start * 1e6,
                op.end * 1e6,
                format!("{:?}", op.stream),
                op.name
            )?;
        }
        Ok(())
    }
}

/// Schedule the graph on a host stream and an asynchronous device
/// stream. Nodes with shape metadata are costed through the estimator;
/// `offload` picks device nodes. Dependencies are honoured: an op starts
/// no earlier than its stream frees up *and* all its producers finish.
pub fn schedule_overlap(
    gm: &GraphModule,
    host: &DeviceSpec,
    device: &DeviceSpec,
    offload: impl Fn(&Node) -> bool,
) -> Result<Schedule> {
    schedule_overlap_with(
        gm,
        |node, stream| {
            let (flops, bytes, int8) = node_cost(gm, node);
            let spec = match stream {
                Stream::Host => host,
                Stream::Device => device,
            };
            spec.op_time(flops, bytes, int8)
        },
        offload,
    )
}

/// [`schedule_overlap`] with measured per-node times from an
/// [`Executor`](fx_core::Executor) [`RunProfile`] instead of the
/// roofline model: replay a real run as a two-stream what-if. Nodes the
/// profile did not time (or that produce no work) cost zero.
pub fn schedule_from_profile(
    gm: &GraphModule,
    profile: &RunProfile,
    offload: impl Fn(&Node) -> bool,
) -> Result<Schedule> {
    let measured: HashMap<&str, f64> = profile
        .node_times
        .iter()
        .map(|t| (t.name.as_str(), t.seconds))
        .collect();
    schedule_overlap_with(
        gm,
        |node, _stream| measured.get(node.name()).copied().unwrap_or(0.0),
        offload,
    )
}

/// The list-scheduling core: `cost(node, stream)` supplies each op's
/// duration on its assigned stream, `offload` picks device nodes.
pub fn schedule_overlap_with(
    gm: &GraphModule,
    cost: impl Fn(&Node, Stream) -> f64,
    offload: impl Fn(&Node) -> bool,
) -> Result<Schedule> {
    let graph = gm.graph();
    let mut finish: HashMap<NodeId, f64> = HashMap::new();
    let mut host_free = 0.0f64;
    let mut device_free = 0.0f64;
    let mut sequential = 0.0f64;
    let mut ops = Vec::new();
    for node in graph.nodes() {
        if matches!(
            node.op(),
            Opcode::Placeholder | Opcode::Output | Opcode::GetAttr
        ) {
            finish.insert(node.id(), 0.0);
            continue;
        }
        let stream = if offload(node) {
            Stream::Device
        } else {
            Stream::Host
        };
        let dur = cost(node, stream);
        sequential += dur;
        let deps_ready = node
            .input_nodes()
            .iter()
            .filter_map(|d| finish.get(d))
            .fold(0.0f64, |a, &b| a.max(b));
        let free = match stream {
            Stream::Host => &mut host_free,
            Stream::Device => &mut device_free,
        };
        let start = free.max(deps_ready);
        let end = start + dur;
        *free = end;
        finish.insert(node.id(), end);
        ops.push(ScheduledOp {
            name: node.name().to_string(),
            stream,
            start,
            end,
        });
    }
    Ok(Schedule {
        ops,
        makespan: host_free.max(device_free),
        sequential,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape_prop::shape_prop;
    use fx_core::{func, symbolic_trace_fn, Value};
    use fx_tensor::Tensor;

    /// Two independent chains: one matmul-heavy (offloaded), one
    /// elementwise (host). Overlap should approach max() of the chains
    /// rather than their sum.
    fn two_chain_module() -> GraphModule {
        let mut gm = symbolic_trace_fn(2, |xs| {
            // chain A: heavy matmuls
            let a = func::matmul(&xs[0], &xs[0])?;
            let a = func::matmul(&a, &xs[0])?;
            // chain B: light elementwise
            let b = func::relu(&xs[1])?;
            let b = func::sigmoid(&b)?;
            // join
            let bsum = func::mean(&b)?;
            func::add(&func::mean(&a)?, &bsum)
        })
        .unwrap();
        let x0 = Value::Tensor(Tensor::ones(&[128, 128]));
        let x1 = Value::Tensor(Tensor::ones(&[128, 128]));
        shape_prop(&mut gm, &[x0, x1]).unwrap();
        gm
    }

    #[test]
    fn overlap_beats_sequential() {
        let gm = two_chain_module();
        let schedule = schedule_overlap(
            &gm,
            &DeviceSpec::xeon_6138(),
            &DeviceSpec::v100(),
            |n| n.target() == "matmul",
        )
        .unwrap();
        assert!(schedule.makespan <= schedule.sequential + 1e-12);
        assert!(schedule.speedup() >= 1.0);
        // Both streams were actually used.
        assert!(schedule.ops.iter().any(|o| o.stream == Stream::Device));
        assert!(schedule.ops.iter().any(|o| o.stream == Stream::Host));
    }

    #[test]
    fn dependencies_are_respected() {
        let gm = two_chain_module();
        let schedule = schedule_overlap(
            &gm,
            &DeviceSpec::xeon_6138(),
            &DeviceSpec::v100(),
            |n| n.target() == "matmul",
        )
        .unwrap();
        let by_name: HashMap<&str, &ScheduledOp> =
            schedule.ops.iter().map(|o| (o.name.as_str(), o)).collect();
        // The second matmul starts after the first ends.
        assert!(by_name["matmul_1"].start >= by_name["matmul"].end - 1e-12);
        // The display renders.
        assert!(schedule.to_string().contains("speedup"));
    }

    #[test]
    fn measured_profile_drives_the_schedule() {
        let gm = two_chain_module();
        let x0 = Value::Tensor(Tensor::ones(&[128, 128]));
        let x1 = Value::Tensor(Tensor::ones(&[128, 128]));
        let (_, profile) = fx_core::Executor::new(&gm)
            .run_profiled(&[x0, x1])
            .unwrap();
        let schedule =
            schedule_from_profile(&gm, &profile, |n| n.target() == "matmul").unwrap();
        // Every timed compute node appears, durations come from the run.
        assert!(schedule.sequential > 0.0);
        assert!(schedule.makespan <= schedule.sequential + 1e-12);
        let matmul = schedule
            .ops
            .iter()
            .find(|o| o.name == "matmul")
            .expect("matmul scheduled");
        let measured = profile.node_seconds("matmul").unwrap();
        assert!((matmul.end - matmul.start - measured).abs() < 1e-12);
    }

    #[test]
    fn all_host_equals_sequential() {
        let gm = two_chain_module();
        let schedule =
            schedule_overlap(&gm, &DeviceSpec::xeon_6138(), &DeviceSpec::v100(), |_| false)
                .unwrap();
        assert!((schedule.makespan - schedule.sequential).abs() < 1e-12);
    }
}
