//! FLOPs / memory-traffic estimation and roofline runtime simulation
//! (paper §6.3: "a framework for simulation of deep learning inference
//! at scale on various hardware devices … estimation of FLOPs, memory
//! bandwidth usage, and data value sizes of the workload, allowing for
//! estimation of the program runtime and memory consumption").
//!
//! Requires shape metadata (run
//! [`shape_prop`](crate::shape_prop::shape_prop) or
//! [`infer_shapes`](crate::shape_prop::infer_shapes) first). Each node
//! gets an analytic FLOP and byte count; a [`DeviceSpec`] turns those
//! into a roofline time `max(flops/peak, bytes/bandwidth) + dispatch
//! overhead`. Peak activation memory comes from a liveness walk over the
//! (functional, control-flow-free) graph.

use fx_core::executor::RunProfile;
use fx_core::{Arg, Error, GraphModule, Node, NodeId, Opcode, Result};
use fx_nn::Conv2d;
use std::collections::HashMap;
use std::fmt;

/// An abstract execution target for the roofline model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// Sustained peak f32 throughput, FLOP/s.
    pub peak_flops: f64,
    /// Sustained memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Fixed per-op dispatch/launch overhead, seconds.
    pub dispatch_overhead: f64,
    /// Throughput multiplier applied to int8 ops (FBGEMM/tensor-core
    /// style speedup).
    pub int8_speedup: f64,
}

impl DeviceSpec {
    /// An NVIDIA V100-SXM2-like device (the paper's GPU testbed).
    pub fn v100() -> DeviceSpec {
        DeviceSpec {
            name: "V100-SXM2-16GB (sim)",
            peak_flops: 14.0e12,
            mem_bandwidth: 900.0e9,
            dispatch_overhead: 6.0e-6,
            int8_speedup: 4.0,
        }
    }

    /// An Intel Xeon Gold 6138-like socket with full intra-op threading
    /// (the paper's CPU testbed).
    pub fn xeon_6138() -> DeviceSpec {
        DeviceSpec {
            name: "Xeon Gold 6138, 20 threads (sim)",
            peak_flops: 1.3e12,
            mem_bandwidth: 110.0e9,
            dispatch_overhead: 1.5e-6,
            int8_speedup: 3.0,
        }
    }

    /// The same Xeon limited to one thread (`OMP_NUM_THREADS=1`).
    pub fn xeon_6138_single_thread() -> DeviceSpec {
        DeviceSpec {
            name: "Xeon Gold 6138, 1 thread (sim)",
            peak_flops: 80.0e9,
            mem_bandwidth: 18.0e9,
            dispatch_overhead: 0.6e-6,
            int8_speedup: 3.0,
        }
    }

    /// The machine the benchmarks actually run on: one x86-64 core.
    /// Peak FLOP/s follows the SIMD width the kernel library selected —
    /// with AVX2+FMA, 2 FMA ports × 8 f32 lanes × 2 flops ≈ 32
    /// flops/cycle at a nominal 3 GHz; the portable scalar path
    /// auto-vectorizes one FMA chain, roughly a quarter of that. Used to
    /// put measured GEMM/conv GFLOP/s on a roofline in the benches.
    pub fn host_cpu_single_core() -> DeviceSpec {
        let simd = fx_tensor::simd_enabled();
        DeviceSpec {
            name: if simd {
                "host core, AVX2+FMA microkernel"
            } else {
                "host core, portable scalar"
            },
            peak_flops: if simd { 96.0e9 } else { 24.0e9 },
            mem_bandwidth: 20.0e9,
            dispatch_overhead: 0.5e-6,
            int8_speedup: 2.0,
        }
    }

    /// A TPU-v2-like systolic accelerator for ASIC-lowering what-ifs
    /// (§6.4).
    pub fn tpu_like() -> DeviceSpec {
        DeviceSpec {
            name: "TPU-like ASIC (sim)",
            peak_flops: 45.0e12,
            mem_bandwidth: 600.0e9,
            dispatch_overhead: 20.0e-6,
            int8_speedup: 2.0,
        }
    }

    /// Roofline time for one op.
    pub fn op_time(&self, flops: u64, bytes: u64, int8: bool) -> f64 {
        let peak = if int8 {
            self.peak_flops * self.int8_speedup
        } else {
            self.peak_flops
        };
        let compute = flops as f64 / peak;
        let memory = bytes as f64 / self.mem_bandwidth;
        compute.max(memory) + self.dispatch_overhead
    }
}

/// Cost estimate for a single node.
#[derive(Debug, Clone)]
pub struct NodeCost {
    /// Node name.
    pub name: String,
    /// Call target.
    pub target: String,
    /// Floating-point (or int-MAC) operations.
    pub flops: u64,
    /// Bytes moved (inputs + weights + output).
    pub bytes: u64,
    /// Whether the op runs in the int8 domain.
    pub int8: bool,
    /// Roofline time on the chosen device, seconds.
    pub time: f64,
}

/// Whole-graph estimate.
#[derive(Debug, Clone)]
pub struct Report {
    /// Device the roofline was evaluated for.
    pub device: DeviceSpec,
    /// Per-node costs in execution order.
    pub nodes: Vec<NodeCost>,
    /// Total FLOPs.
    pub total_flops: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Estimated runtime, seconds.
    pub total_time: f64,
    /// Peak live activation memory, bytes.
    pub peak_activation_bytes: u64,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "device: {}", self.device.name)?;
        writeln!(
            f,
            "total: {:.3} GFLOP, {:.1} MB moved, {:.3} ms, peak activations {:.1} MB",
            self.total_flops as f64 / 1e9,
            self.total_bytes as f64 / 1e6,
            self.total_time * 1e3,
            self.peak_activation_bytes as f64 / 1e6
        )?;
        let mut top: Vec<&NodeCost> = self.nodes.iter().collect();
        top.sort_by(|a, b| b.time.total_cmp(&a.time));
        writeln!(f, "top ops by time:")?;
        for c in top.iter().take(8) {
            writeln!(
                f,
                "  {:<28} {:>10.3} MFLOP {:>9.2} MB {:>9.1} us",
                c.name,
                c.flops as f64 / 1e6,
                c.bytes as f64 / 1e6,
                c.time * 1e6
            )?;
        }
        Ok(())
    }
}

fn shape_of(gm: &GraphModule, id: NodeId) -> Option<Vec<usize>> {
    gm.graph().node(id).shape_meta().map(<[usize]>::to_vec)
}

fn numel(shape: &[usize]) -> u64 {
    shape.iter().product::<usize>() as u64
}

fn first_input_shape(gm: &GraphModule, node: &Node) -> Option<Vec<usize>> {
    node.args()
        .first()
        .and_then(Arg::as_node)
        .and_then(|id| shape_of(gm, id))
}

fn elem_bytes(gm: &GraphModule, id: NodeId) -> u64 {
    use fx_core::Meta;
    match gm.graph().node(id).meta.get("dtype") {
        Some(Meta::DType(d)) => d.size_bytes() as u64,
        _ => 4,
    }
}

/// Analytic `(flops, bytes, int8)` for one node. Nodes without shape
/// metadata contribute zero cost (placeholders, non-tensor ops).
pub fn node_cost(gm: &GraphModule, node: &Node) -> (u64, u64, bool) {
    let out_shape = match node.shape_meta() {
        Some(s) => s.to_vec(),
        None => return (0, 0, false),
    };
    let out_n = numel(&out_shape);
    let in_shape = first_input_shape(gm, node).unwrap_or_default();
    let in_n = numel(&in_shape);
    let eb = elem_bytes(gm, node.id());
    let target = node.target();
    let int8 = target.starts_with("quantized::");

    // call_module: consult the module for weights/geometry.
    if node.op() == Opcode::CallModule {
        if let Some(m) = gm.get_module(target) {
            let w_numel: u64 = m
                .own_parameters()
                .iter()
                .map(|(_, t)| t.numel() as u64)
                .sum();
            let int8_m = m.type_name().starts_with("Quantized");
            let flops = match m.type_name() {
                "Conv2d" | "QuantizedConv2d" | "QuantizedConv2dReLU" => {
                    // 2 * out_numel * (C/g * kh * kw) per output element.
                    let k = if let Some(c) = m.as_any().downcast_ref::<Conv2d>() {
                        let w = c.weight().shape();
                        w[1] * w[2] * w[3]
                    } else {
                        let w = m
                            .own_parameters()
                            .into_iter()
                            .find(|(n, _)| n == "weight")
                            .map(|(_, t)| t.shape().to_vec())
                            .unwrap_or_default();
                        if w.len() == 4 {
                            w[1] * w[2] * w[3]
                        } else {
                            1
                        }
                    };
                    2 * out_n * k as u64
                }
                "Linear" | "QuantizedLinear" | "QuantizedLinearReLU" => {
                    let in_f = in_shape.last().copied().unwrap_or(1) as u64;
                    2 * out_n * in_f
                }
                "BatchNorm2d" | "LayerNorm" => 2 * out_n,
                "MaxPool2d" | "AvgPool2d" | "AdaptiveAvgPool2d" => {
                    // Roughly one op per input element inspected.
                    in_n.max(out_n)
                }
                _ => out_n,
            };
            let bytes = (in_n + out_n) * eb + w_numel * if int8_m { 1 } else { 4 };
            return (flops, bytes, int8_m);
        }
    }

    let flops = match target {
        "conv2d" | "quantized::conv2d" | "quantized::conv2d_relu" => {
            let w_shape = node
                .args()
                .get(1)
                .and_then(Arg::as_node)
                .and_then(|id| shape_of(gm, id))
                .unwrap_or_default();
            let k: u64 = if w_shape.len() == 4 {
                (w_shape[1] * w_shape[2] * w_shape[3]) as u64
            } else {
                1
            };
            2 * out_n * k
        }
        "linear" | "quantized::linear" | "quantized::linear_relu" => {
            2 * out_n * in_shape.last().copied().unwrap_or(1) as u64
        }
        "matmul" => {
            let k = in_shape.last().copied().unwrap_or(1) as u64;
            2 * out_n * k
        }
        "batch_norm" | "layer_norm" => 2 * out_n,
        "softmax" | "log_softmax" => 4 * out_n,
        "max_pool2d" | "avg_pool2d" | "adaptive_avg_pool2d" => in_n.max(out_n),
        // Pure data movement.
        "flatten" | "reshape" | "view" | "permute" | "transpose" | "cat" | "contiguous"
        | "dropout" => 0,
        _ => out_n,
    };
    let weight_bytes: u64 = node
        .args()
        .iter()
        .skip(1)
        .filter_map(Arg::as_node)
        .filter_map(|id| shape_of(gm, id).map(|s| numel(&s) * elem_bytes(gm, id)))
        .sum();
    let bytes = (in_n + out_n) * eb + weight_bytes;
    (flops, bytes, int8)
}

/// Estimate the whole graph on `device`. Shape metadata must already be
/// present on tensor-producing nodes.
pub fn estimate(gm: &GraphModule, device: &DeviceSpec) -> Result<Report> {
    let graph = gm.graph();
    if graph
        .nodes()
        .filter(|n| !matches!(n.op(), Opcode::Output | Opcode::Placeholder | Opcode::GetAttr))
        .all(|n| n.shape_meta().is_none())
    {
        return Err(Error::Graph(
            "estimate: no shape metadata found — run shape_prop or infer_shapes first"
                .to_string(),
        ));
    }
    let mut nodes = Vec::new();
    let mut total_flops = 0u64;
    let mut total_bytes = 0u64;
    let mut total_time = 0.0;
    for node in graph.nodes() {
        if matches!(node.op(), Opcode::Placeholder | Opcode::Output | Opcode::GetAttr) {
            continue;
        }
        let (flops, bytes, int8) = node_cost(gm, node);
        let time = device.op_time(flops, bytes, int8);
        total_flops += flops;
        total_bytes += bytes;
        total_time += time;
        nodes.push(NodeCost {
            name: node.name().to_string(),
            target: node.target().to_string(),
            flops,
            bytes,
            int8,
            time,
        });
    }
    let peak = peak_activation_bytes(gm);
    Ok(Report {
        device: device.clone(),
        nodes,
        total_flops,
        total_bytes,
        total_time,
        peak_activation_bytes: peak,
    })
}

/// Predicted-vs-measured times for one node, joining a roofline
/// [`Report`] with an [`Executor`](fx_core::Executor) [`RunProfile`].
#[derive(Debug, Clone)]
pub struct NodeComparison {
    /// Node name.
    pub name: String,
    /// Call target.
    pub target: String,
    /// Roofline prediction, seconds.
    pub predicted: f64,
    /// Measured wall time from the profile, seconds.
    pub measured: f64,
}

/// The estimator's predictions lined up against a measured run.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Per-node comparisons, in estimate order (nodes present in both).
    pub nodes: Vec<NodeComparison>,
    /// Sum of predicted times over the matched nodes, seconds.
    pub predicted_total: f64,
    /// Sum of measured times over the matched nodes, seconds.
    pub measured_total: f64,
}

impl Calibration {
    /// `measured / predicted` — the factor the roofline is off by on
    /// this machine. Multiply a [`DeviceSpec`]'s predictions by this to
    /// calibrate them to measured reality.
    pub fn scale(&self) -> f64 {
        if self.predicted_total > 0.0 {
            self.measured_total / self.predicted_total
        } else {
            1.0
        }
    }
}

impl fmt::Display for Calibration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "calibration over {} nodes: predicted {:.1} us, measured {:.1} us (scale {:.2}x)",
            self.nodes.len(),
            self.predicted_total * 1e6,
            self.measured_total * 1e6,
            self.scale()
        )?;
        let mut worst: Vec<&NodeComparison> = self.nodes.iter().collect();
        worst.sort_by(|a, b| {
            (b.measured - b.predicted)
                .abs()
                .total_cmp(&(a.measured - a.predicted).abs())
        });
        for c in worst.iter().take(8) {
            writeln!(
                f,
                "  {:<28} predicted {:>9.1} us  measured {:>9.1} us",
                c.name,
                c.predicted * 1e6,
                c.measured * 1e6
            )?;
        }
        Ok(())
    }
}

/// Join a roofline [`Report`] with a measured [`RunProfile`] node by
/// node (matched on node name). Nodes present in only one side are
/// skipped — the profile also times placeholders and outputs, which the
/// estimator deliberately does not cost.
pub fn compare_with_profile(report: &Report, profile: &RunProfile) -> Calibration {
    let measured: HashMap<&str, f64> = profile
        .node_times
        .iter()
        .map(|t| (t.name.as_str(), t.seconds))
        .collect();
    let mut nodes = Vec::new();
    let mut predicted_total = 0.0;
    let mut measured_total = 0.0;
    for cost in &report.nodes {
        if let Some(&m) = measured.get(cost.name.as_str()) {
            predicted_total += cost.time;
            measured_total += m;
            nodes.push(NodeComparison {
                name: cost.name.clone(),
                target: cost.target.clone(),
                predicted: cost.time,
                measured: m,
            });
        }
    }
    Calibration {
        nodes,
        predicted_total,
        measured_total,
    }
}

/// Estimator-vs-planner agreement on peak activation memory for one
/// annotated module (see [`cross_check_peak`]).
#[derive(Debug, Clone)]
pub struct PeakCrossCheck {
    /// [`peak_activation_bytes`]'s analytic liveness-walk peak.
    pub estimator_peak_bytes: u64,
    /// The memory planner's exact-size peak over the same liveness.
    pub planner_exact_peak_bytes: u64,
    /// The planner's bucketed steady-state pool footprint.
    pub planner_pool_peak_bytes: u64,
    /// Buffer reuses the planner scheduled per run.
    pub planned_reuses: usize,
}

/// Cross-validate the analytic peak against the executor's static
/// memory planner. Both derive from the same last-use liveness over the
/// same shape metadata, so on a fully annotated graph
/// `estimator_peak_bytes == planner_exact_peak_bytes`; the bucketed
/// pool footprint may exceed the exact peak only by the power-of-two
/// rounding (< 2x). Errors if the graph carries no shape metadata.
pub fn cross_check_peak(gm: &GraphModule) -> Result<PeakCrossCheck> {
    let plan = fx_core::ExecPlan::compile(gm.graph())?;
    let mem = plan.mem.as_ref().ok_or_else(|| {
        Error::Graph(
            "cross_check_peak: no shape metadata on the graph; run infer_shapes or shape_prop \
             first"
                .to_string(),
        )
    })?;
    Ok(PeakCrossCheck {
        estimator_peak_bytes: peak_activation_bytes(gm),
        planner_exact_peak_bytes: mem.exact_peak_bytes,
        planner_pool_peak_bytes: mem.pool_peak_bytes,
        planned_reuses: mem.planned_reuses,
    })
}

/// Peak live activation footprint from a last-use liveness walk.
pub fn peak_activation_bytes(gm: &GraphModule) -> u64 {
    let graph = gm.graph();
    let ids = graph.node_ids();
    let mut last_use: HashMap<NodeId, usize> = HashMap::new();
    for (pos, &id) in ids.iter().enumerate() {
        for dep in graph.node(id).input_nodes() {
            last_use.insert(dep, pos);
        }
    }
    let mut live = 0u64;
    let mut peak = 0u64;
    for (pos, &id) in ids.iter().enumerate() {
        let node = graph.node(id);
        if let Some(shape) = node.shape_meta() {
            live += numel(shape) * elem_bytes(gm, id);
        }
        peak = peak.max(live);
        // Free everything whose last use was here.
        for dep in node.input_nodes() {
            if last_use.get(&dep) == Some(&pos) {
                if let Some(shape) = graph.node(dep).shape_meta() {
                    live = live.saturating_sub(numel(shape) * elem_bytes(gm, dep));
                }
            }
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape_prop::shape_prop;
    use fx_core::{symbolic_trace, Value};
    use fx_models::{resnet_tiny, Mlp};
    use fx_tensor::Tensor;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    fn prepared_mlp() -> GraphModule {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[64, 128, 32], &mut rng);
        let mut gm = symbolic_trace(&mlp).unwrap();
        shape_prop(&mut gm, &[Value::Tensor(Tensor::ones(&[4, 64]))]).unwrap();
        gm
    }

    #[test]
    fn mlp_flops_are_exact() {
        let gm = prepared_mlp();
        let report = estimate(&gm, &DeviceSpec::xeon_6138()).unwrap();
        // fc0: 2*4*64*128, relu: 4*128, fc1: 2*4*128*32
        let expect = 2 * 4 * 64 * 128 + 4 * 128 + 2 * 4 * 128 * 32;
        assert_eq!(report.total_flops, expect as u64);
        assert!(report.total_time > 0.0);
        assert!(report.peak_activation_bytes > 0);
    }

    #[test]
    fn estimate_requires_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[4, 4], &mut rng);
        let gm = symbolic_trace(&mlp).unwrap();
        assert!(estimate(&gm, &DeviceSpec::v100()).is_err());
    }

    #[test]
    fn faster_device_estimates_faster() {
        let gm = prepared_mlp();
        let cpu = estimate(&gm, &DeviceSpec::xeon_6138_single_thread()).unwrap();
        let gpu = estimate(&gm, &DeviceSpec::v100()).unwrap();
        // Per-op compute time shrinks; overhead may dominate tiny models,
        // so compare the pure compute component via totals minus overhead.
        let n = cpu.nodes.len() as f64;
        let cpu_compute = cpu.total_time - n * cpu.device.dispatch_overhead;
        let gpu_compute = gpu.total_time - n * gpu.device.dispatch_overhead;
        assert!(gpu_compute < cpu_compute);
    }

    #[test]
    fn resnet_tiny_estimate_is_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = resnet_tiny(&mut rng);
        let mut gm = symbolic_trace(&model).unwrap();
        shape_prop(&mut gm, &[Value::Tensor(Tensor::randn(&[1, 3, 32, 32], &mut rng))])
            .unwrap();
        let report = estimate(&gm, &DeviceSpec::v100()).unwrap();
        // Convs dominate FLOPs.
        let conv_flops: u64 = report
            .nodes
            .iter()
            .filter(|c| c.target.contains("conv"))
            .map(|c| c.flops)
            .sum();
        assert!(conv_flops * 10 > report.total_flops * 8, "convs should dominate");
        let text = report.to_string();
        assert!(text.contains("GFLOP") || text.contains("MFLOP"));
    }

    #[test]
    fn calibration_joins_estimate_with_measured_profile() {
        let gm = prepared_mlp();
        let report = estimate(&gm, &DeviceSpec::xeon_6138()).unwrap();
        let (_, profile) = fx_core::Executor::new(&gm)
            .run_profiled(&[Value::Tensor(Tensor::ones(&[4, 64]))])
            .unwrap();
        let cal = compare_with_profile(&report, &profile);
        // Every costed node was measured: fc0, relu, fc1.
        assert_eq!(cal.nodes.len(), report.nodes.len());
        assert!(cal.measured_total > 0.0);
        assert!(cal.scale() > 0.0);
        assert!(cal.to_string().contains("scale"));
    }

    #[test]
    fn int8_ops_get_speedup() {
        let d = DeviceSpec::xeon_6138();
        let t_f32 = d.op_time(1_000_000_000, 0, false);
        let t_i8 = d.op_time(1_000_000_000, 0, true);
        assert!(t_i8 < t_f32);
    }
}
