//! Convolution–BatchNorm fusion (paper §6.2.2).
//!
//! At inference a `Conv2d → BatchNorm2d` sequence is equivalent to a
//! single convolution with folded weights (Markuš 2018):
//!
//! ```text
//! scale_c = γ_c / sqrt(var_c + ε)
//! w'[c, ...] = w[c, ...] * scale_c
//! b'[c]      = β_c + (b[c] - mean_c) * scale_c
//! ```
//!
//! The transform needs exactly what the paper says it needs: **non-local
//! program context** (who consumes the conv's output?) and **state
//! modification alongside code modification** (swap the module, rewire
//! the nodes) — both provided by [`GraphModule`].

use fx_core::{Error, GraphModule, NodeId, Opcode, Result};
use fx_nn::{BatchNorm2d, Conv2d};
use fx_tensor::Tensor;
use std::sync::Arc;

/// Fold one BN into one conv, producing the fused convolution.
pub fn fold_conv_bn(conv: &Conv2d, bn: &BatchNorm2d) -> Result<Conv2d> {
    let w = conv.weight();
    let wd = w.as_f32()?;
    let gamma = bn.weight().as_f32()?;
    let beta = bn.bias().as_f32()?;
    let mean = bn.running_mean().as_f32()?;
    let var = bn.running_var().as_f32()?;
    let eps = bn.eps();
    let o = w.shape()[0];
    if gamma.len() != o {
        return Err(Error::Module(format!(
            "conv has {o} output channels but bn normalizes {}",
            gamma.len()
        )));
    }
    let per_out: usize = w.shape()[1..].iter().product();
    let scale: Vec<f32> = (0..o)
        .map(|c| gamma[c] / (var[c] + eps).sqrt())
        .collect();
    let mut new_w = Vec::with_capacity(wd.len());
    for c in 0..o {
        new_w.extend(wd[c * per_out..(c + 1) * per_out].iter().map(|v| v * scale[c]));
    }
    let old_bias = conv.bias().map(|b| b.as_f32().map(<[f32]>::to_vec));
    let old_bias = match old_bias {
        Some(Ok(b)) => b,
        Some(Err(e)) => return Err(e.into()),
        None => vec![0.0; o],
    };
    let new_b: Vec<f32> = (0..o)
        .map(|c| beta[c] + (old_bias[c] - mean[c]) * scale[c])
        .collect();
    let (stride, padding, dilation, groups) = conv.geometry();
    Ok(Conv2d::from_parts(
        Tensor::from_vec(new_w, w.shape()),
        Some(Tensor::from_vec(new_b, &[o])),
        stride,
        padding,
        dilation,
        groups,
    ))
}

/// Find every `call_module(Conv2d) → call_module(BatchNorm2d)` pair in
/// which the conv output has no other consumer, fold the BN into the
/// conv, rewire uses of the BN to the conv, and erase the BN node.
/// Returns the number of fusions performed.
pub fn fuse_conv_bn(gm: &mut GraphModule) -> Result<usize> {
    // Locate (conv_node, bn_node) pairs first; mutate afterwards.
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for node in gm.graph().nodes() {
        if node.op() != Opcode::CallModule {
            continue;
        }
        let Some(m) = gm.get_module(node.target()) else {
            continue;
        };
        if m.type_name() != "Conv2d" {
            continue;
        }
        let users = gm.graph().users(node.id());
        if users.len() != 1 {
            continue;
        }
        let user = gm.graph().node(users[0]);
        if user.op() != Opcode::CallModule {
            continue;
        }
        let Some(bn_m) = gm.get_module(user.target()) else {
            continue;
        };
        if bn_m.type_name() == "BatchNorm2d" {
            pairs.push((node.id(), user.id()));
        }
    }
    let count = pairs.len();
    for (conv_id, bn_id) in pairs {
        let conv_path = gm.graph().node(conv_id).target().to_string();
        let bn_path = gm.graph().node(bn_id).target().to_string();
        let fused = {
            let conv = gm
                .get_module(&conv_path)
                .and_then(|m| m.as_any().downcast_ref::<Conv2d>().cloned())
                .ok_or_else(|| Error::Module(format!("`{conv_path}` is not a Conv2d")))?;
            let bn = gm
                .get_module(&bn_path)
                .and_then(|m| m.as_any().downcast_ref::<BatchNorm2d>().cloned())
                .ok_or_else(|| Error::Module(format!("`{bn_path}` is not a BatchNorm2d")))?;
            fold_conv_bn(&conv, &bn)?
        };
        gm.set_module(&conv_path, Arc::new(fused));
        let graph = gm.graph_mut();
        graph.replace_all_uses_with(bn_id, conv_id);
        graph.erase_node(bn_id)?;
    }
    gm.delete_unused_state();
    gm.recompile()?;
    fx_core::validate::after_pass(gm, "fuse_conv_bn")?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{symbolic_trace, ModuleExt, Value};
    use fx_models::resnet_tiny;
    use fx_tensor::Tensor;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    fn random_bn<R: fx_tensor::rng::Rng>(c: usize, rng: &mut R) -> BatchNorm2d {
        BatchNorm2d::new(c)
            .with_stats(
                Tensor::rand_uniform(&[c], -0.5, 0.5, rng),
                Tensor::rand_uniform(&[c], 0.2, 2.0, rng),
            )
            .with_affine(
                Tensor::rand_uniform(&[c], 0.5, 1.5, rng),
                Tensor::rand_uniform(&[c], -0.3, 0.3, rng),
            )
    }

    #[test]
    fn folded_conv_matches_conv_then_bn() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(3, 5, (3, 3), &mut rng).with_padding((1, 1));
        let bn = random_bn(5, &mut rng);
        let fused = fold_conv_bn(&conv, &bn).unwrap();

        let x = Value::Tensor(Tensor::randn(&[2, 3, 8, 8], &mut rng));
        let y1 = bn.call(&[conv.call(&[x.clone()]).unwrap()]).unwrap();
        let y2 = fused.call(&[x]).unwrap();
        assert!(
            y1.as_tensor()
                .unwrap()
                .allclose(y2.as_tensor().unwrap(), 1e-3),
            "max diff {}",
            y1.as_tensor()
                .unwrap()
                .max_abs_diff(y2.as_tensor().unwrap())
                .unwrap()
        );
    }

    #[test]
    fn folded_conv_without_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(2, 4, (1, 1), &mut rng).without_bias();
        let bn = random_bn(4, &mut rng);
        let fused = fold_conv_bn(&conv, &bn).unwrap();
        assert!(fused.bias().is_some(), "fusion must materialize a bias");
        let x = Value::Tensor(Tensor::randn(&[1, 2, 4, 4], &mut rng));
        let y1 = bn.call(&[conv.call(&[x.clone()]).unwrap()]).unwrap();
        let y2 = fused.call(&[x]).unwrap();
        assert!(y1.as_tensor().unwrap().allclose(y2.as_tensor().unwrap(), 1e-3));
    }

    #[test]
    fn fuse_whole_resnet_preserves_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = resnet_tiny(&mut rng);
        let gm = symbolic_trace(&model).unwrap();
        let bn_before = gm
            .modules()
            .values()
            .filter(|m| m.type_name() == "BatchNorm2d")
            .count();
        assert!(bn_before > 0);

        let mut fused = gm.clone();
        let n = fuse_conv_bn(&mut fused).unwrap();
        assert_eq!(n, bn_before, "every conv-bn pair in ResNet fuses");
        fused.graph().lint().unwrap();
        assert!(
            !fused
                .modules()
                .values()
                .any(|m| m.type_name() == "BatchNorm2d"),
            "no BatchNorm2d modules survive"
        );
        assert!(fused.graph().len() < gm.graph().len());

        let x = Value::Tensor(Tensor::randn(&[1, 3, 32, 32], &mut rng));
        let y1 = gm.run(&[x.clone()]).unwrap();
        let y2 = fused.run(&[x]).unwrap();
        assert!(
            y1.as_tensor()
                .unwrap()
                .allclose(y2.as_tensor().unwrap(), 1e-2),
            "fused ResNet diverged: {}",
            y1.as_tensor()
                .unwrap()
                .max_abs_diff(y2.as_tensor().unwrap())
                .unwrap()
        );
    }

    #[test]
    fn channel_mismatch_is_an_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new(2, 4, (1, 1), &mut rng);
        let bn = BatchNorm2d::new(8);
        assert!(fold_conv_bn(&conv, &bn).is_err());
    }
}
