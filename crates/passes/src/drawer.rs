//! Graphviz DOT rendering — the paper's `fx.graph_drawer` (§6.3): "a
//! commonly-requested way of understanding a deep learning program via a
//! visual representation of its DAG".

use fx_core::{GraphModule, Opcode};
use std::fmt::Write as _;

fn color(op: Opcode) -> &'static str {
    match op {
        Opcode::Placeholder => "lightblue",
        Opcode::GetAttr => "lightyellow",
        Opcode::CallFunction => "lightgray",
        Opcode::CallMethod => "lightpink",
        Opcode::CallModule => "lightgreen",
        Opcode::Output => "orange",
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the module's graph as Graphviz DOT. Node labels carry the
/// name, opcode, target and (when shape propagation has run) the output
/// shape; fill colors distinguish the six opcodes.
pub fn to_dot(gm: &GraphModule, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, style=filled, fontname=\"monospace\"];");
    for node in gm.graph().nodes() {
        let mut label = format!(
            "{}\\n{} target={}",
            node.name(),
            node.op(),
            escape(node.target())
        );
        if let Some(shape) = node.shape_meta() {
            let _ = write!(label, "\\nshape={shape:?}");
        }
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\", fillcolor={}];",
            node.name(),
            label,
            color(node.op())
        );
    }
    let graph = gm.graph();
    for node in graph.nodes() {
        for dep in node.input_nodes() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\";",
                graph.node(dep).name(),
                node.name()
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{func, symbolic_trace_fn};

    #[test]
    fn dot_contains_nodes_edges_and_colors() {
        let gm = symbolic_trace_fn(1, |xs| func::relu(&xs[0])?.neg()).unwrap();
        let dot = to_dot(&gm, "fig1");
        assert!(dot.starts_with("digraph \"fig1\""));
        assert!(dot.contains("\"x\" -> \"relu\""));
        assert!(dot.contains("\"relu\" -> \"neg\""));
        assert!(dot.contains("fillcolor=lightblue")); // placeholder
        assert!(dot.contains("fillcolor=orange")); // output
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn shapes_appear_when_propagated() {
        use crate::shape_prop::shape_prop;
        use fx_core::Value;
        use fx_tensor::Tensor;
        let mut gm = symbolic_trace_fn(1, |xs| func::relu(&xs[0])).unwrap();
        shape_prop(&mut gm, &[Value::Tensor(Tensor::ones(&[2, 3]))]).unwrap();
        let dot = to_dot(&gm, "g");
        assert!(dot.contains("shape=[2, 3]"));
    }
}
