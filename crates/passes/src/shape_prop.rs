//! Shape propagation (paper §6.3).
//!
//! Two flavours, as in torch.fx:
//!
//! * [`shape_prop`] — the "naïve implementation … by interpreting the
//!   graph and recording the observed shapes" (the canonical
//!   `fx.passes.shape_prop`): run real inputs through the
//!   [`Executor`] with a hook and stamp `shape`/`dtype` metadata on
//!   every node.
//! * [`infer_shapes`] — abstract interpretation over shapes only: a
//!   registry of per-op transfer functions propagates symbolic input
//!   shapes without touching tensor data. Because the IR has no control
//!   flow, this is a single forward pass — no fixpoint, no lattice, no
//!   join functions (the paper's §5.5 argument).

use fx_core::{
    Arg, Error, Executor, GraphModule, InterpHook, Meta, Node, NodeId, Opcode, Result, Value,
};
use fx_nn::{AdaptiveAvgPool2d, AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d};
use fx_quant::{QuantizedConv2d, QuantizedLinear};
use fx_tensor::shape::{broadcast_shapes, normalize_axis};
use fx_tensor::DType;
use std::collections::HashMap;

/// Concrete shape propagation: run `inputs` through the module and
/// record each node's observed output shape and dtype in its metadata.
/// Returns the module output.
pub fn shape_prop(gm: &mut GraphModule, inputs: &[Value]) -> Result<Value> {
    struct Collect {
        seen: Vec<(NodeId, Vec<usize>, DType)>,
    }
    impl InterpHook for Collect {
        fn on_node(&mut self, node: &Node, value: &Value) -> Result<()> {
            if let Value::Tensor(t) = value {
                self.seen.push((node.id(), t.shape().to_vec(), t.dtype()));
            }
            Ok(())
        }
    }
    let mut hook = Collect { seen: Vec::new() };
    let out = Executor::new(gm).with_hook(&mut hook).run(inputs)?;
    for (id, shape, dtype) in hook.seen {
        if gm.graph().contains(id) {
            let meta = gm.graph_mut().node_meta_mut(id);
            meta.insert("shape".to_string(), Meta::Shape(shape));
            meta.insert("dtype".to_string(), Meta::DType(dtype));
        }
    }
    fx_core::validate::after_pass(gm, "shape_prop")?;
    Ok(out)
}

/// Abstract per-node state: a tensor shape, or an opaque non-tensor.
#[derive(Debug, Clone, PartialEq)]
enum AbsVal {
    Tensor(Vec<usize>),
    Other,
}

/// Pooled output extents, or `None` when the window does not fit the
/// padded input (the subtraction would underflow in `usize`) or a
/// stride is zero.
fn pool_out(
    h: usize,
    w: usize,
    k: (usize, usize),
    s: (usize, usize),
    p: (usize, usize),
) -> Option<(usize, usize)> {
    if s.0 == 0 || s.1 == 0 {
        return None;
    }
    let oh = (h + 2 * p.0).checked_sub(k.0)? / s.0 + 1;
    let ow = (w + 2 * p.1).checked_sub(k.1)? / s.1 + 1;
    Some((oh, ow))
}

fn pair_arg(arg: &Arg) -> Option<(usize, usize)> {
    match arg {
        Arg::Int(v) => Some((*v as usize, *v as usize)),
        Arg::Tuple(items) | Arg::List(items) if items.len() == 2 => {
            Some((items[0].as_int()? as usize, items[1].as_int()? as usize))
        }
        _ => None,
    }
}

fn int_list_arg(arg: &Arg) -> Option<Vec<i64>> {
    match arg {
        Arg::Tuple(items) | Arg::List(items) => items.iter().map(Arg::as_int).collect(),
        _ => None,
    }
}

/// Abstract (data-free) shape inference: propagate `input_shapes`
/// through the graph using per-op transfer functions and stamp `shape`
/// metadata. Returns the shape of every named node.
///
/// Errors on ops whose output shape genuinely depends on data, which is
/// the honest analogue of shape analysis hitting "dynamic" (§5.5).
pub fn infer_shapes(
    gm: &mut GraphModule,
    input_shapes: &[Vec<usize>],
) -> Result<HashMap<String, Vec<usize>>> {
    let mut env: HashMap<NodeId, AbsVal> = HashMap::new();
    let mut out = HashMap::new();
    let mut next_input = 0usize;
    let ids = gm.graph().node_ids();
    for id in ids {
        let node = gm.graph().node(id).clone();
        let val = match node.op() {
            Opcode::Placeholder => {
                let s = input_shapes.get(next_input).ok_or_else(|| {
                    Error::Graph(format!(
                        "infer_shapes: missing input shape for placeholder `{}`",
                        node.target()
                    ))
                })?;
                next_input += 1;
                AbsVal::Tensor(s.clone())
            }
            Opcode::GetAttr => match gm.get_attr_tensor(node.target()) {
                Some(t) => AbsVal::Tensor(t.shape().to_vec()),
                None => AbsVal::Other,
            },
            Opcode::Output => node
                .args()
                .first()
                .and_then(|a| arg_shape(a, &env))
                .map(AbsVal::Tensor)
                .unwrap_or(AbsVal::Other),
            Opcode::CallModule => infer_module(gm, &node, &env)?,
            Opcode::CallFunction | Opcode::CallMethod => infer_call(&node, &env)?,
        };
        if let AbsVal::Tensor(shape) = &val {
            out.insert(node.name().to_string(), shape.clone());
            gm.graph_mut()
                .node_meta_mut(id)
                .insert("shape".to_string(), Meta::Shape(shape.clone()));
        }
        env.insert(id, val);
    }
    fx_core::validate::after_pass(gm, "infer_shapes")?;
    Ok(out)
}

fn arg_shape(arg: &Arg, env: &HashMap<NodeId, AbsVal>) -> Option<Vec<usize>> {
    match arg {
        Arg::Node(id) => match env.get(id) {
            Some(AbsVal::Tensor(s)) => Some(s.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn need_shape(node: &Node, i: usize, env: &HashMap<NodeId, AbsVal>) -> Result<Vec<usize>> {
    node.args()
        .get(i)
        .and_then(|a| arg_shape(a, env))
        .ok_or_else(|| {
            Error::Graph(format!(
                "infer_shapes: node `{}` needs a tensor shape at arg {i}",
                node.name()
            ))
        })
}

fn infer_module(
    gm: &GraphModule,
    node: &Node,
    env: &HashMap<NodeId, AbsVal>,
) -> Result<AbsVal> {
    let module = gm
        .get_module(node.target())
        .ok_or_else(|| Error::Module(format!("missing submodule `{}`", node.target())))?;
    let any = module.as_any();
    let x = need_shape(node, 0, env);
    let v = if let Some(c) = any.downcast_ref::<Conv2d>() {
        let x = x?;
        conv_out_shape(&x, c.weight().shape(), c.geometry().0, c.geometry().1, c.geometry().2)?
    } else if let Some(l) = any.downcast_ref::<Linear>() {
        let mut x = x?;
        let got = *x.last().ok_or_else(|| bad_rank(node))?;
        if got != l.in_features() {
            return Err(Error::Graph(format!(
                "linear `{}`: input last dim {got} does not match weight \
                 in-features {}",
                node.name(),
                l.in_features()
            )));
        }
        *x.last_mut().ok_or_else(|| bad_rank(node))? = l.out_features();
        x
    } else if let Some(q) = any.downcast_ref::<QuantizedLinear>() {
        let mut x = x?;
        *x.last_mut().ok_or_else(|| bad_rank(node))? = q.qweight().shape()[0];
        x
    } else if let Some(q) = any.downcast_ref::<QuantizedConv2d>() {
        let x = x?;
        let (stride, padding) = q.geometry();
        // Dilation and groups are fixed at 1 in the quantized path.
        conv_out_shape(&x, q.qweight().shape(), stride, padding, (1, 1))?
    } else if let Some(p) = any.downcast_ref::<MaxPool2d>() {
        let x = x?;
        pool_module_shape(&x, p.kernel_size, p.stride, p.padding, node)?
    } else if let Some(p) = any.downcast_ref::<AvgPool2d>() {
        let x = x?;
        pool_module_shape(&x, p.kernel_size, p.stride, p.padding, node)?
    } else if let Some(p) = any.downcast_ref::<AdaptiveAvgPool2d>() {
        let x = x?;
        if x.len() != 4 {
            return Err(bad_rank(node));
        }
        vec![x[0], x[1], p.output_size.0, p.output_size.1]
    } else if let Some(f) = any.downcast_ref::<Flatten>() {
        let x = x?;
        flatten_shape(&x, f.start_dim, f.end_dim)?
    } else {
        // Shape-preserving leaves: norms, activations, dropout, identity,
        // observers.
        match module.type_name() {
            "BatchNorm2d" | "LayerNorm" | "ReLU" | "GELU" | "SELU" | "Sigmoid" | "Tanh"
            | "LeakyReLU" | "ReLU6" | "Dropout" | "Identity" | "MinMaxObserver"
            | "MovingAverageObserver" | "HistogramObserver" => x?,
            other => {
                return Err(Error::Graph(format!(
                    "infer_shapes: no transfer function for module type `{other}` at `{}`",
                    node.name()
                )))
            }
        }
    };
    Ok(AbsVal::Tensor(v))
}

fn bad_rank(node: &Node) -> Error {
    Error::Graph(format!(
        "infer_shapes: node `{}` received a tensor of unexpected rank",
        node.name()
    ))
}

fn conv_out_shape(
    x: &[usize],
    w: &[usize],
    stride: (usize, usize),
    padding: (usize, usize),
    dilation: (usize, usize),
) -> Result<Vec<usize>> {
    if x.len() != 4 || w.len() != 4 {
        return Err(Error::Graph("conv shape fn: need 4-d shapes".to_string()));
    }
    if stride.0 == 0 || stride.1 == 0 {
        return Err(Error::Graph(
            "conv shape fn: stride must be positive".to_string(),
        ));
    }
    // Effective window: dilation * (kernel - 1) + 1. Checked so an
    // oversized kernel (or kernel 0) is an error, not a usize underflow.
    let extent = |input: usize, pad: usize, d: usize, k: usize, s: usize| -> Option<usize> {
        let span = k.checked_sub(1)?.checked_mul(d)?;
        Some((input + 2 * pad).checked_sub(span + 1)? / s + 1)
    };
    let oh = extent(x[2], padding.0, dilation.0, w[2], stride.0);
    let ow = extent(x[3], padding.1, dilation.1, w[3], stride.1);
    match (oh, ow) {
        (Some(oh), Some(ow)) => Ok(vec![x[0], w[0], oh, ow]),
        _ => Err(Error::Graph(format!(
            "conv shape fn: kernel {}×{} (dilation {:?}) does not fit input {}×{} \
             with padding {:?}",
            w[2], w[3], dilation, x[2], x[3], padding
        ))),
    }
}

fn pool_module_shape(
    x: &[usize],
    k: (usize, usize),
    s: (usize, usize),
    p: (usize, usize),
    node: &Node,
) -> Result<Vec<usize>> {
    if x.len() != 4 {
        return Err(bad_rank(node));
    }
    let (oh, ow) = pool_out(x[2], x[3], k, s, p).ok_or_else(|| {
        Error::Graph(format!(
            "pool shape fn: window {k:?} with stride {s:?} does not fit input {}×{} \
             with padding {p:?} at `{}`",
            x[2],
            x[3],
            node.name()
        ))
    })?;
    Ok(vec![x[0], x[1], oh, ow])
}

fn flatten_shape(x: &[usize], start: i64, end: i64) -> Result<Vec<usize>> {
    if x.is_empty() {
        // Flattening a 0-d tensor yields a 1-element vector (PyTorch
        // semantics); indexing `x[s..=e]` below would panic.
        return Ok(vec![1]);
    }
    let rank = x.len();
    let s = normalize_axis("flatten", start, rank).map_err(Error::Tensor)?;
    let e = normalize_axis("flatten", end, rank).map_err(Error::Tensor)?;
    if s > e {
        return Err(Error::Graph(format!(
            "flatten: start_dim {start} is after end_dim {end}"
        )));
    }
    let mut out: Vec<usize> = x[..s].to_vec();
    out.push(x[s..=e].iter().product());
    out.extend_from_slice(&x[e + 1..]);
    Ok(out)
}

fn infer_call(node: &Node, env: &HashMap<NodeId, AbsVal>) -> Result<AbsVal> {
    let target = node.target();
    let shape = |i: usize| need_shape(node, i, env);
    let v: Vec<usize> = match target {
        // identity-shaped
        "relu" | "gelu" | "selu" | "sigmoid" | "tanh" | "neg" | "exp" | "log" | "sqrt"
        | "rsqrt" | "abs" | "clamp" | "hardtanh" | "leaky_relu" | "dropout" | "softmax"
        | "log_softmax" | "batch_norm" | "layer_norm" | "quantize_per_tensor" | "dequantize"
        | "quantized::relu" | "contiguous" => shape(0)?,
        "add" | "sub" | "mul" | "div" | "maximum" | "minimum" | "quantized::add" => {
            let a = shape(0).unwrap_or_default();
            let b = node
                .args()
                .get(1)
                .and_then(|arg| arg_shape(arg, env))
                .unwrap_or_default(); // scalar immediates broadcast as []
            broadcast_shapes(&a, &b).map_err(Error::Tensor)?
        }
        "linear" | "quantized::linear" | "quantized::linear_relu" => {
            let mut x = shape(0)?;
            let w = shape(1)?;
            let out = *w.first().ok_or_else(|| bad_rank(node))?;
            // The float path stores weights [out, in]; reject a
            // contraction-dim mismatch here so admission checks (e.g.
            // serve registration/swap) catch it before runtime. The
            // quantized variants keep packed layouts — skip them.
            if target == "linear" {
                let in_f = *w.get(1).ok_or_else(|| bad_rank(node))?;
                let got = *x.last().ok_or_else(|| bad_rank(node))?;
                if got != in_f {
                    return Err(Error::Graph(format!(
                        "linear `{}`: input last dim {got} does not match weight \
                         in-features {in_f} (weight {w:?})",
                        node.name()
                    )));
                }
            }
            *x.last_mut().ok_or_else(|| bad_rank(node))? = out;
            x
        }
        "matmul" => {
            let a = shape(0)?;
            let b = shape(1)?;
            let check = |k_a: usize, k_b: usize| -> Result<()> {
                if k_a != k_b {
                    return Err(Error::Graph(format!(
                        "matmul `{}`: inner dims disagree ({a:?} vs {b:?})",
                        node.name()
                    )));
                }
                Ok(())
            };
            match (a.len(), b.len()) {
                (2, 2) => {
                    check(a[1], b[0])?;
                    vec![a[0], b[1]]
                }
                (3, 3) => {
                    check(a[2], b[1])?;
                    vec![a[0], a[1], b[2]]
                }
                (1, 1) => {
                    check(a[0], b[0])?;
                    vec![]
                }
                (1, 2) => {
                    check(a[0], b[0])?;
                    vec![b[1]]
                }
                (2, 1) => {
                    check(a[1], b[0])?;
                    vec![a[0]]
                }
                _ => return Err(bad_rank(node)),
            }
        }
        "conv2d" | "quantized::conv2d" | "quantized::conv2d_relu" => {
            let x = shape(0)?;
            let w = shape(1)?;
            let stride = node.args().get(3).and_then(pair_arg).unwrap_or((1, 1));
            let padding = node.args().get(4).and_then(pair_arg).unwrap_or((0, 0));
            let dilation = if target == "conv2d" {
                node.args().get(5).and_then(pair_arg).unwrap_or((1, 1))
            } else {
                (1, 1)
            };
            conv_out_shape(&x, &w, stride, padding, dilation)?
        }
        "max_pool2d" | "avg_pool2d" => {
            let x = shape(0)?;
            let k = node.args().get(1).and_then(pair_arg).unwrap_or((1, 1));
            let s = node.args().get(2).and_then(pair_arg).unwrap_or(k);
            let p = node.args().get(3).and_then(pair_arg).unwrap_or((0, 0));
            pool_module_shape(&x, k, s, p, node)?
        }
        "adaptive_avg_pool2d" => {
            let x = shape(0)?;
            if x.len() != 4 {
                return Err(bad_rank(node));
            }
            let o = node.args().get(1).and_then(pair_arg).unwrap_or((1, 1));
            vec![x[0], x[1], o.0, o.1]
        }
        "flatten" => {
            let x = shape(0)?;
            let s = node.args().get(1).and_then(Arg::as_int).unwrap_or(0);
            let e = node.args().get(2).and_then(Arg::as_int).unwrap_or(-1);
            flatten_shape(&x, s, e)?
        }
        "reshape" | "view" => {
            let dims = node
                .args()
                .get(1)
                .and_then(int_list_arg)
                .ok_or_else(|| bad_rank(node))?;
            dims.into_iter().map(|d| d as usize).collect()
        }
        "permute" => {
            let x = shape(0)?;
            let dims = node
                .args()
                .get(1)
                .and_then(int_list_arg)
                .ok_or_else(|| bad_rank(node))?;
            if dims.len() != x.len() {
                return Err(Error::Graph(format!(
                    "infer_shapes: permute at `{}` got {} dims for a rank-{} tensor",
                    node.name(),
                    dims.len(),
                    x.len()
                )));
            }
            dims.into_iter()
                .map(|d| {
                    normalize_axis("permute", d, x.len())
                        .map(|axis| x[axis])
                        .map_err(Error::Tensor)
                })
                .collect::<Result<_>>()?
        }
        "transpose" => {
            let mut x = shape(0)?;
            let d0 = normalize_axis(
                "transpose",
                node.args().get(1).and_then(Arg::as_int).unwrap_or(0),
                x.len(),
            )
            .map_err(Error::Tensor)?;
            let d1 = normalize_axis(
                "transpose",
                node.args().get(2).and_then(Arg::as_int).unwrap_or(1),
                x.len(),
            )
            .map_err(Error::Tensor)?;
            x.swap(d0, d1);
            x
        }
        "cat" => {
            let items = match node.args().first() {
                Some(Arg::List(items)) | Some(Arg::Tuple(items)) => items,
                _ => return Err(bad_rank(node)),
            };
            let dim = node.args().get(1).and_then(Arg::as_int).unwrap_or(0);
            let shapes: Vec<Vec<usize>> = items
                .iter()
                .map(|a| arg_shape(a, env).ok_or_else(|| bad_rank(node)))
                .collect::<Result<_>>()?;
            let first = shapes.first().ok_or_else(|| {
                Error::Graph(format!(
                    "infer_shapes: cat at `{}` has no inputs",
                    node.name()
                ))
            })?;
            if shapes.iter().any(|s| s.len() != first.len()) {
                return Err(Error::Graph(format!(
                    "infer_shapes: cat at `{}` mixes tensors of different rank",
                    node.name()
                )));
            }
            let axis = normalize_axis("cat", dim, first.len()).map_err(Error::Tensor)?;
            let mut out = first.clone();
            out[axis] = shapes.iter().map(|s| s[axis]).sum();
            out
        }
        "sum" | "mean" => {
            let x = shape(0)?;
            match node.args().get(1).and_then(Arg::as_int) {
                None => vec![],
                Some(d) => {
                    let axis = normalize_axis("reduce", d, x.len()).map_err(Error::Tensor)?;
                    let keep = matches!(node.args().get(2), Some(Arg::Bool(true)));
                    let mut out = x.clone();
                    if keep {
                        out[axis] = 1;
                    } else {
                        out.remove(axis);
                    }
                    out
                }
            }
        }
        "embedding" => {
            let w = shape(0)?;
            if w.len() != 2 {
                return Err(bad_rank(node));
            }
            let idx = shape(1)?;
            let mut out = idx;
            out.push(w[1]);
            out
        }
        "squeeze" => {
            let mut x = shape(0)?;
            let d = normalize_axis(
                "squeeze",
                node.args().get(1).and_then(Arg::as_int).unwrap_or(0),
                x.len(),
            )
            .map_err(Error::Tensor)?;
            x.remove(d);
            x
        }
        "unsqueeze" => {
            let mut x = shape(0)?;
            let d = normalize_axis(
                "unsqueeze",
                node.args().get(1).and_then(Arg::as_int).unwrap_or(0),
                x.len() + 1,
            )
            .map_err(Error::Tensor)?;
            x.insert(d, 1);
            x
        }
        // non-tensor or data-dependent results
        "size" | "dim" | "item" | "chunk" | "getitem" | "argmax" => return Ok(AbsVal::Other),
        other => {
            return Err(Error::Graph(format!(
                "infer_shapes: no transfer function for op `{other}` at `{}`",
                node.name()
            )))
        }
    };
    Ok(AbsVal::Tensor(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::symbolic_trace;
    use fx_models::{resnet_tiny, Mlp};
    use fx_tensor::Tensor;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    #[test]
    fn concrete_shape_prop_stamps_metadata() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[4, 8, 2], &mut rng);
        let mut gm = symbolic_trace(&mlp).unwrap();
        let x = Value::Tensor(Tensor::ones(&[3, 4]));
        shape_prop(&mut gm, &[x]).unwrap();
        let fc1 = gm
            .graph()
            .nodes()
            .find(|n| n.target() == "fc1")
            .unwrap();
        assert_eq!(fc1.shape_meta(), Some(&[3usize, 2][..]));
    }

    #[test]
    fn abstract_matches_concrete_on_resnet() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = resnet_tiny(&mut rng);
        let mut gm_c = symbolic_trace(&model).unwrap();
        let mut gm_a = gm_c.clone();
        let x = Value::Tensor(Tensor::randn(&[2, 3, 32, 32], &mut rng));
        shape_prop(&mut gm_c, &[x]).unwrap();
        let inferred = infer_shapes(&mut gm_a, &[vec![2, 3, 32, 32]]).unwrap();
        for node in gm_c.graph().nodes() {
            if let Some(shape) = node.shape_meta() {
                assert_eq!(
                    inferred.get(node.name()).map(|v| v.as_slice()),
                    Some(shape),
                    "abstract and concrete disagree at `{}`",
                    node.name()
                );
            }
        }
    }

    #[test]
    fn abstract_infers_without_data() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = Mlp::new(&[16, 32, 10], &mut rng);
        let mut gm = symbolic_trace(&mlp).unwrap();
        let shapes = infer_shapes(&mut gm, &[vec![5, 16]]).unwrap();
        assert_eq!(shapes["fc1"], vec![5, 10]);
        assert_eq!(shapes["fc0"], vec![5, 32]);
    }

    #[test]
    fn missing_input_shape_errors() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(&[4, 4], &mut rng);
        let mut gm = symbolic_trace(&mlp).unwrap();
        assert!(infer_shapes(&mut gm, &[]).is_err());
    }

    /// Regression: these transfer functions used to panic (usize
    /// underflow / out-of-bounds indexing) on malformed-but-reachable
    /// inputs. All must now return typed errors.
    #[test]
    fn malformed_shape_inputs_error_instead_of_panicking() {
        // Oversized pool window: 9×9 window on a 4×4 input underflowed.
        let err = pool_module_shape_probe(&[1, 3, 4, 4], (9, 9), (1, 1), (0, 0));
        assert!(err.unwrap_err().to_string().contains("does not fit"));
        // Zero pool stride: division by zero.
        let err = pool_module_shape_probe(&[1, 3, 4, 4], (2, 2), (0, 1), (0, 0));
        assert!(err.is_err());
        // Oversized conv kernel.
        let err = conv_out_shape(&[1, 3, 4, 4], &[8, 3, 7, 7], (1, 1), (0, 0), (1, 1));
        assert!(err.unwrap_err().to_string().contains("does not fit"));
        // Zero conv stride.
        assert!(conv_out_shape(&[1, 3, 8, 8], &[8, 3, 3, 3], (0, 1), (0, 0), (1, 1)).is_err());
        // Dilation blowing up the effective window.
        assert!(conv_out_shape(&[1, 3, 8, 8], &[8, 3, 3, 3], (1, 1), (0, 0), (9, 9)).is_err());
        // flatten of a 0-d shape used to index x[0..=e] out of bounds.
        assert_eq!(flatten_shape(&[], 0, -1).unwrap(), vec![1]);
        // start after end is an error, not an inverted slice panic.
        assert!(flatten_shape(&[2, 3, 4], 2, 0).is_err());
        // Sane case still works.
        assert_eq!(flatten_shape(&[2, 3, 4], 1, -1).unwrap(), vec![2, 12]);
    }

    fn pool_module_shape_probe(
        x: &[usize],
        k: (usize, usize),
        s: (usize, usize),
        p: (usize, usize),
    ) -> Result<Vec<usize>> {
        let mut g = fx_core::Graph::new();
        let ph = g.placeholder("x");
        g.output(Arg::Node(ph));
        let node = g.node(ph).clone();
        pool_module_shape(x, k, s, p, &node)
    }

    #[test]
    fn oversized_pool_in_graph_errors_cleanly() {
        // A full infer_shapes run over a graph whose pool window exceeds
        // the input: errors with the node name, no panic.
        let mut g = fx_core::Graph::new();
        let x = g.placeholder("x");
        let pooled = g.call_function(
            "max_pool2d",
            vec![
                Arg::Node(x),
                Arg::Tuple(vec![Arg::Int(9), Arg::Int(9)]),
                Arg::Tuple(vec![Arg::Int(1), Arg::Int(1)]),
            ],
            Default::default(),
        );
        g.output(Arg::Node(pooled));
        let mut gm = fx_core::GraphModule::new(
            g,
            Default::default(),
            Default::default(),
            vec!["x".to_string()],
        )
        .unwrap();
        let err = infer_shapes(&mut gm, &[vec![1, 3, 4, 4]]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("does not fit"), "unexpected error: {msg}");
    }
}
