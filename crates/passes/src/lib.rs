//! # fx-passes — analyses and transforms over fx graphs
//!
//! The transform library the torch.fx paper's case studies are built
//! from:
//!
//! * [`fuse`] — conv–BN fusion (§6.2.2)
//! * [`shape_prop`] — concrete and abstract shape propagation (§6.3)
//! * [`sym_shape`] — symbolic-expression shape propagation (§6.3's
//!   "in development" system, built out here)
//! * [`estimator`] — FLOPs / bytes / roofline-runtime / peak-memory
//!   estimation on simulated devices (§6.3)
//! * [`drawer`] — Graphviz rendering (§6.3)
//! * [`splitter`] — supported/unsupported partitioning (§6.4, fx2trt's
//!   auto-split)
//! * [`scheduler`] — two-stream overlap scheduling (§6.2.3)
//! * [`cse`] / [`constfold`] — classic cleanups, trivially sound on the
//!   mutation-free IR (§5.5–§5.6)
//! * [`batch_check`] — static batch-polymorphism admission check for
//!   the `fx_serve` dynamic batcher

#![warn(missing_docs)]

pub mod batch_check;
pub mod constfold;
pub mod cse;
pub mod drawer;
pub mod estimator;
pub mod fuse;
pub mod scheduler;
pub mod shape_prop;
pub mod splitter;
pub mod sym_shape;

pub use batch_check::batch_polymorphic;
pub use constfold::fold_constants;
pub use cse::eliminate_common_subexpressions;
pub use drawer::to_dot;
pub use estimator::{
    cross_check_peak, estimate, node_cost, peak_activation_bytes, DeviceSpec, NodeCost,
    PeakCrossCheck, Report,
};
pub use fuse::{fold_conv_bn, fuse_conv_bn};
pub use scheduler::{schedule_overlap, Schedule, ScheduledOp, Stream};
pub use shape_prop::{infer_shapes, shape_prop};
pub use splitter::{split_by, Partition, SplitResult};
pub use sym_shape::{display_sym_shape, infer_sym_shapes, SymDim, SymShape};
