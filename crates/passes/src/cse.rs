//! Common-subexpression elimination.
//!
//! Because the IR is purely functional — no mutation, no aliasing (paper
//! §5.5–5.6) — two nodes with the same opcode, target and arguments
//! always compute the same value, so CSE is a simple forward hash scan:
//! no effect analysis, no alias barriers, the exact simplification the
//! paper contrasts against TorchScript's conservative treatment of
//! opaque calls.

use fx_core::{GraphModule, Node, NodeId, Opcode, Result};
use std::collections::HashMap;

fn node_key(node: &Node) -> String {
    // Args are compared by Debug form; RAUW rewrites downstream args as
    // we deduplicate, so later nodes are keyed on canonical inputs.
    format!(
        "{:?}|{}|{:?}|{:?}",
        node.op(),
        node.target(),
        node.args(),
        node.kwargs()
    )
}

/// Deduplicate identical `call_function` / `call_method` / `get_attr`
/// nodes. `call_module` nodes are left alone: module forwards are
/// semantically pure at inference here, but observers inserted by
/// quantization deliberately count calls, so module calls are treated as
/// opaque. Returns the number of nodes removed.
pub fn eliminate_common_subexpressions(gm: &mut GraphModule) -> Result<usize> {
    let graph = gm.graph_mut();
    let mut seen: HashMap<String, NodeId> = HashMap::new();
    let mut removed = 0;
    for id in graph.node_ids() {
        let node = graph.node(id);
        if !matches!(
            node.op(),
            Opcode::CallFunction | Opcode::CallMethod | Opcode::GetAttr
        ) {
            continue;
        }
        let key = node_key(node);
        match seen.get(&key) {
            Some(&canonical) => {
                graph.replace_all_uses_with(id, canonical);
                graph.erase_node(id)?;
                removed += 1;
            }
            None => {
                seen.insert(key, id);
            }
        }
    }
    if removed > 0 {
        gm.recompile()?;
    }
    fx_core::validate::after_pass(gm, "cse")?;
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{func, symbolic_trace_fn, Value};
    use fx_tensor::Tensor;

    #[test]
    fn duplicate_relus_collapse() {
        let mut gm = symbolic_trace_fn(1, |xs| {
            let a = func::relu(&xs[0])?;
            let b = func::relu(&xs[0])?; // identical expression
            func::add(&a, &b)
        })
        .unwrap();
        let before = gm.graph().len();
        let x = Value::Tensor(Tensor::from_vec(vec![-1.0, 2.0], &[2]));
        let y_before = gm.run(&[x.clone()]).unwrap();

        let removed = eliminate_common_subexpressions(&mut gm).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(gm.graph().len(), before - 1);
        gm.graph().lint().unwrap();

        let y_after = gm.run(&[x]).unwrap();
        assert_eq!(y_before, y_after);
    }

    #[test]
    fn different_immediates_do_not_merge() {
        let mut gm = symbolic_trace_fn(1, |xs| {
            let a = func::add(&xs[0], &Value::Float(1.0))?;
            let b = func::add(&xs[0], &Value::Float(2.0))?;
            func::mul(&a, &b)
        })
        .unwrap();
        assert_eq!(eliminate_common_subexpressions(&mut gm).unwrap(), 0);
    }

    #[test]
    fn chains_collapse_transitively() {
        let mut gm = symbolic_trace_fn(1, |xs| {
            let a1 = func::relu(&xs[0])?;
            let a2 = func::relu(&xs[0])?;
            let b1 = func::neg(&a1)?;
            let b2 = func::neg(&a2)?; // becomes identical after a2 -> a1
            func::add(&b1, &b2)
        })
        .unwrap();
        let removed = eliminate_common_subexpressions(&mut gm).unwrap();
        assert_eq!(removed, 2, "both the relu and the neg dedupe");
        gm.graph().lint().unwrap();
    }
}
