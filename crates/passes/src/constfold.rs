//! Constant folding: evaluate nodes whose inputs are all compile-time
//! constants (immediates and `get_attr` parameters) once, ahead of time,
//! and replace them with attribute fetches of the precomputed result.
//!
//! This is the ahead-of-time half of what the backend's engine compiler
//! does when it folds batch-norm parameters; exposed as a standalone
//! pass it also cleans up scale/shift expressions left by other
//! transforms.

use fx_core::{dispatch, Arg, GraphModule, NodeId, Opcode, Result, Value};
use std::collections::HashMap;

fn const_value(
    arg: &Arg,
    known: &HashMap<NodeId, Value>,
) -> Option<Value> {
    Some(match arg {
        Arg::Node(id) => known.get(id)?.clone(),
        Arg::Int(v) => Value::Int(*v),
        Arg::Float(v) => Value::Float(*v),
        Arg::Bool(v) => Value::Bool(*v),
        Arg::Str(v) => Value::Str(v.clone()),
        Arg::None => Value::None,
        Arg::List(items) => Value::List(
            items
                .iter()
                .map(|a| const_value(a, known))
                .collect::<Option<_>>()?,
        ),
        Arg::Tuple(items) => Value::Tuple(
            items
                .iter()
                .map(|a| const_value(a, known))
                .collect::<Option<_>>()?,
        ),
    })
}

/// Fold all-constant `call_function` / `call_method` nodes. Folded
/// tensor results are installed as `_folded_<n>` attributes fetched via
/// `get_attr`; dead producers are cleaned up. Returns the number of
/// nodes folded.
pub fn fold_constants(gm: &mut GraphModule) -> Result<usize> {
    // Seed: get_attr nodes are constants (parameters don't change at
    // inference).
    let mut known: HashMap<NodeId, Value> = HashMap::new();
    let mut folded = 0usize;
    let mut fold_counter = 0usize;
    for id in gm.graph().node_ids() {
        let node = gm.graph().node(id).clone();
        match node.op() {
            Opcode::GetAttr => {
                if let Some(t) = gm.get_attr_tensor(node.target()) {
                    known.insert(id, Value::Tensor(t.clone()));
                }
            }
            Opcode::CallFunction | Opcode::CallMethod => {
                let args: Option<Vec<Value>> = node
                    .args()
                    .iter()
                    .map(|a| const_value(a, &known))
                    .collect();
                let Some(args) = args else { continue };
                let kwargs: Option<Vec<(String, Value)>> = node
                    .kwargs()
                    .iter()
                    .map(|(k, a)| const_value(a, &known).map(|v| (k.clone(), v)))
                    .collect();
                let Some(kwargs) = kwargs else { continue };
                let result = if node.op() == Opcode::CallFunction {
                    dispatch::eager_function(node.target(), &args, &kwargs)
                } else {
                    dispatch::eager_method(node.target(), &args, &kwargs)
                };
                // Folding is best-effort: an op that fails at fold time
                // will fail identically at run time; leave it in place.
                let Ok(result) = result else { continue };
                let Value::Tensor(t) = &result else {
                    // Non-tensor constants could fold into immediates;
                    // keep it simple and only fold tensor results.
                    continue;
                };
                let attr_name = format!("_folded_{fold_counter}");
                fold_counter += 1;
                gm.set_attr(&attr_name, t.clone());
                let graph = gm.graph_mut();
                let getter = graph.inserting_before(id).get_attr(&attr_name);
                graph.replace_all_uses_with(id, getter);
                graph.erase_node(id)?;
                known.insert(getter, result);
                folded += 1;
            }
            _ => {}
        }
    }
    if folded > 0 {
        gm.graph_mut().eliminate_dead_code();
        gm.delete_unused_state();
        gm.recompile()?;
    }
    fx_core::validate::after_pass(gm, "fold_constants")?;
    Ok(folded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{func, symbolic_trace_fn, Arg, Value};
    use fx_tensor::Tensor;

    /// Note: tracing already partially evaluates proxy-free expressions
    /// (§5.3's "partially evaluated during the trace"), so a foldable
    /// graph has to reference constants through `get_attr` — which is
    /// exactly what parameters look like. These tests build such graphs
    /// directly.
    fn graph_with_attr(
        build: impl FnOnce(&mut fx_core::Graph, fx_core::NodeId, fx_core::NodeId),
        attr: Tensor,
    ) -> GraphModule {
        let mut g = fx_core::Graph::new();
        let x = g.placeholder("x");
        let w = g.get_attr("w");
        build(&mut g, x, w);
        let mut attrs = std::collections::BTreeMap::new();
        attrs.insert("w".to_string(), attr);
        GraphModule::new(g, Default::default(), attrs, vec!["x".to_string()]).unwrap()
    }

    #[test]
    fn folds_constant_subtree() {
        // neg(w) is constant; add(x, that) is not.
        let mut gm = graph_with_attr(
            |g, x, w| {
                let n = g.call_function("neg", vec![Arg::Node(w)], vec![]);
                let a = g.call_function("add", vec![Arg::Node(x), Arg::Node(n)], vec![]);
                g.output(Arg::Node(a));
            },
            Tensor::from_vec(vec![1.0, 2.0], &[2]),
        );
        let x = Value::Tensor(Tensor::from_vec(vec![10.0, 10.0], &[2]));
        let before = gm.run(&[x.clone()]).unwrap();

        let folded = fold_constants(&mut gm).unwrap();
        assert_eq!(folded, 1);
        gm.graph().lint().unwrap();
        assert!(
            !gm.code().contains("torch.neg"),
            "neg folded away:\n{}",
            gm.code()
        );
        assert!(gm.attrs().keys().any(|k| k.starts_with("_folded_")));

        let after = gm.run(&[x]).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn non_constant_nodes_survive() {
        let mut gm = symbolic_trace_fn(1, |xs| func::relu(&xs[0])).unwrap();
        assert_eq!(fold_constants(&mut gm).unwrap(), 0);
        assert!(gm.code().contains("torch.relu"));
    }

    #[test]
    fn transitive_folding() {
        let mut gm = graph_with_attr(
            |g, x, w| {
                let a = g.call_function("neg", vec![Arg::Node(w)], vec![]); // const
                let b = g.call_function("abs", vec![Arg::Node(a)], vec![]); // const-of-const
                let m = g.call_function("mul", vec![Arg::Node(x), Arg::Node(b)], vec![]);
                g.output(Arg::Node(m));
            },
            Tensor::from_vec(vec![2.0], &[1]),
        );
        let folded = fold_constants(&mut gm).unwrap();
        assert_eq!(folded, 2);
        let x = Value::Tensor(Tensor::from_vec(vec![3.0], &[1]));
        let y = gm.run(&[x]).unwrap();
        assert_eq!(y.as_tensor().unwrap().as_f32().unwrap(), &[6.0]);
    }
}
