//! Batch-polymorphism check — the admission gate of the serving layer.
//!
//! A dynamic batcher (`fx_serve`) stacks independent requests along
//! dim 0, runs the graph once, and splits the output back by rows. That
//! is only sound when the graph treats the leading extent of every
//! placeholder as free: a graph that hard-codes the batch size (a
//! `reshape` to a fixed extent, a `flatten` across dim 0, a transpose
//! that moves the batch axis into the payload) would silently mix rows
//! of unrelated requests.
//!
//! [`batch_polymorphic`] detects this *statically*, via abstract shape
//! propagation ([`infer_shapes`]): it probes the graph at two different
//! batch extents and requires that (a) both propagate successfully, and
//! (b) the output's leading dim equals the batch extent while its
//! trailing dims stay fixed. No tensor data is touched, so the check is
//! cheap enough to run at server-construction time.

use crate::shape_prop::infer_shapes;
use fx_core::{Error, GraphModule, Opcode, Result};

/// The two batch extents the graph is probed at. Co-prime and unequal,
/// so a graph whose output happens to scale *proportionally* without
/// being row-aligned (e.g. `flatten(0, -1)`) is still caught by the
/// leading-dim-equals-batch requirement.
const PROBE_BATCHES: [usize; 2] = [2, 3];

/// Check that `gm` is polymorphic in the batch (leading) dimension, and
/// return the canonical per-placeholder **trailing** dims (everything
/// under dim 0) a server should validate requests against.
///
/// `sample_shapes` gives one full shape per placeholder (leading dim =
/// any representative batch extent, e.g. `[1, 3, 32, 32]`). Every
/// placeholder is assumed to carry the batch on dim 0; the graph is
/// probed with each placeholder's leading extent replaced by the same
/// trial batch size.
///
/// Errors with a descriptive [`Error::Graph`] when:
/// * a sample shape is rank 0 (no batch dimension to vary),
/// * shape inference fails at a probed batch size (the graph's shapes
///   are inconsistent away from the sample batch — a hard-coded
///   extent), or
/// * the inferred output shape's leading dim is not exactly the probed
///   batch size, or its trailing dims change with the batch.
pub fn batch_polymorphic(
    gm: &GraphModule,
    sample_shapes: &[Vec<usize>],
) -> Result<Vec<Vec<usize>>> {
    let n_placeholders = gm.graph().placeholders().len();
    if sample_shapes.len() != n_placeholders {
        return Err(Error::Graph(format!(
            "batch_polymorphic: {n_placeholders} placeholder(s) but {} sample shape(s)",
            sample_shapes.len()
        )));
    }
    let trailing: Vec<Vec<usize>> = sample_shapes
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if s.is_empty() {
                Err(Error::Graph(format!(
                    "batch_polymorphic: sample shape for placeholder {i} is 0-d; \
                     batching needs a leading batch dimension"
                )))
            } else {
                Ok(s[1..].to_vec())
            }
        })
        .collect::<Result<_>>()?;

    let output_name = gm
        .graph()
        .nodes()
        .find(|n| n.op() == Opcode::Output)
        .map(|n| n.name().to_string())
        .ok_or_else(|| Error::Graph("batch_polymorphic: graph has no output node".to_string()))?;

    let mut out_trailing: Option<Vec<usize>> = None;
    for &b in &PROBE_BATCHES {
        let probe_shapes: Vec<Vec<usize>> = trailing
            .iter()
            .map(|t| {
                let mut s = vec![b];
                s.extend_from_slice(t);
                s
            })
            .collect();
        // infer_shapes stamps metadata, so probe a scratch clone.
        let mut scratch = gm.clone();
        let shapes = infer_shapes(&mut scratch, &probe_shapes).map_err(|e| {
            Error::Graph(format!(
                "not batch-polymorphic: shape inference fails at batch extent {b} \
                 (the graph bakes in a batch size): {e}"
            ))
        })?;
        let out_shape = shapes.get(&output_name).ok_or_else(|| {
            Error::Graph(
                "not batch-polymorphic: the output is not a tensor of inferable shape"
                    .to_string(),
            )
        })?;
        if out_shape.first() != Some(&b) {
            return Err(Error::Graph(format!(
                "not batch-polymorphic: at batch extent {b} the output has shape \
                 {out_shape:?}; its leading dim must equal the batch extent for \
                 per-request splitting to be row-aligned"
            )));
        }
        match &out_trailing {
            None => out_trailing = Some(out_shape[1..].to_vec()),
            Some(prev) if prev != &out_shape[1..] => {
                return Err(Error::Graph(format!(
                    "not batch-polymorphic: output trailing dims change with the \
                     batch extent ({prev:?} at {} vs {:?} at {b})",
                    PROBE_BATCHES[0],
                    &out_shape[1..]
                )));
            }
            Some(_) => {}
        }
    }
    Ok(trailing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{func, symbolic_trace, symbolic_trace_fn};
    use fx_models::Mlp;
    use fx_tensor::rng::{SeedableRng, StdRng};

    #[test]
    fn mlp_is_batch_polymorphic() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Mlp::new(&[8, 16, 4], &mut rng);
        let gm = symbolic_trace(&m).unwrap();
        let trailing = batch_polymorphic(&gm, &[vec![1, 8]]).unwrap();
        assert_eq!(trailing, vec![vec![8]]);
    }

    #[test]
    fn elementwise_function_graph_passes() {
        let gm = symbolic_trace_fn(2, |xs| {
            let s = func::add(&xs[0], &xs[1])?;
            func::relu(&s)
        })
        .unwrap();
        let trailing = batch_polymorphic(&gm, &[vec![4, 3], vec![4, 3]]).unwrap();
        assert_eq!(trailing, vec![vec![3], vec![3]]);
    }

    #[test]
    fn quantized_conv_graph_is_admissible() {
        // The serve registry admits models through this check; a
        // PTQ-converted conv net (QuantizedConv2d/QuantizedLinear
        // modules plus quantize/dequantize boundary nodes) must pass so
        // int8 models can be served batched.
        use fx_core::Value;
        use fx_tensor::Tensor;
        let mut rng = StdRng::seed_from_u64(11);
        let model = fx_models::resnet_tiny(&mut rng);
        let mut gm = symbolic_trace(&model).unwrap();
        crate::fuse_conv_bn(&mut gm).unwrap();
        let cal: Vec<Vec<Value>> = (0..2)
            .map(|_| {
                vec![Value::Tensor(Tensor::rand_uniform(
                    &[2, 3, 32, 32],
                    -1.0,
                    1.0,
                    &mut rng,
                ))]
            })
            .collect();
        let qgm =
            fx_quant::quantize_ptq(&gm, &cal, &fx_quant::QConfig::default()).unwrap();
        let trailing = batch_polymorphic(&qgm, &[vec![1, 3, 32, 32]]).unwrap();
        assert_eq!(trailing, vec![vec![3, 32, 32]]);
    }

    #[test]
    fn flatten_across_batch_is_rejected() {
        // flatten(0, -1) folds the batch into the payload: output [b*k]
        // is never leading-dim == b (k > 1), so splitting by request
        // rows would hand each request a slice of someone else's data.
        let gm = symbolic_trace_fn(1, |xs| func::flatten(&xs[0], 0, -1)).unwrap();
        let err = batch_polymorphic(&gm, &[vec![1, 4]]).unwrap_err();
        assert!(
            err.to_string().contains("not batch-polymorphic"),
            "{err}"
        );
    }

    #[test]
    fn hardcoded_reshape_is_rejected() {
        // reshape to a fixed [2, 6] only works at one batch extent.
        let gm = symbolic_trace_fn(1, |xs| func::reshape(&xs[0], &[2, 6])).unwrap();
        let err = batch_polymorphic(&gm, &[vec![2, 6]]).unwrap_err();
        assert!(
            err.to_string().contains("not batch-polymorphic"),
            "{err}"
        );
    }

    #[test]
    fn scalar_output_is_rejected() {
        // A global reduction has no batch dim to split on.
        let gm = symbolic_trace_fn(1, |xs| func::sum(&xs[0])).unwrap();
        assert!(batch_polymorphic(&gm, &[vec![1, 4]]).is_err());
    }

    #[test]
    fn wrong_arity_and_scalar_samples_are_rejected() {
        let gm = symbolic_trace_fn(1, |xs| func::relu(&xs[0])).unwrap();
        assert!(batch_polymorphic(&gm, &[]).is_err());
        assert!(batch_polymorphic(&gm, &[vec![]]).is_err());
    }
}
