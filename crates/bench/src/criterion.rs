//! A minimal, dependency-free harness exposing the subset of the
//! `criterion` crate's API our benches use, so `cargo bench` works in
//! offline builds: `Criterion::benchmark_group` → `sample_size` →
//! `bench_function` / `bench_with_input` → `Bencher::iter`, plus the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros.
//!
//! Measurement model: each `iter` call runs one warmup pass, then times
//! `sample_size` passes individually and reports
//! `[mean−σ  mean  mean+σ]`, mirroring criterion's output shape (without
//! its bootstrap analysis).

use crate::Stats;
use std::fmt;
use std::time::Instant;

// Macros declared with `macro_rules!` + `#[macro_export]` land at the
// crate root; re-export them here so benches can write
// `use fx_bench::criterion::{criterion_group, criterion_main, ...}` —
// a pure import swap from the real crate.
pub use crate::{criterion_group, criterion_main};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named group; benchmarks print as `group/id`.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` under `id`.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.stats);
    }

    /// Time `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.stats);
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

/// A `name/parameter` benchmark identifier.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    /// Run one warmup pass, then time `sample_size` passes of `f`.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        let samples: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .collect();
        self.stats = Some(Stats::from_samples(&samples));
    }
}

fn report(group: &str, id: &str, stats: Option<Stats>) {
    match stats {
        Some(s) => println!(
            "{group}/{id}\n                        time:   [{} {} {}]",
            fmt_time(s.mean - s.stdev),
            fmt_time(s.mean),
            fmt_time(s.mean + s.stdev)
        ),
        None => println!("{group}/{id}\n                        (no measurement: iter was never called)"),
    }
}

/// Human-scale a seconds value the way criterion does.
pub fn fmt_time(seconds: f64) -> String {
    let s = seconds.max(0.0);
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} us", s * 1e6)
    } else {
        format!("{:.4} ns", s * 1e9)
    }
}

/// Build a function that runs each listed benchmark against a fresh
/// [`Criterion`] — source-compatible with criterion's macro of the same
/// name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::criterion::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point invoking one or more [`criterion_group!`](crate::criterion_group) groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0usize;
        group.bench_function("sum", |b| b.iter(|| ran += 1));
        // 1 warmup + 3 samples.
        assert_eq!(ran, 4);
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_renders_name_slash_param() {
        assert_eq!(BenchmarkId::new("f32", 16).to_string(), "f32/16");
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(2.0), "2.0000 s");
        assert_eq!(fmt_time(2.5e-3), "2.5000 ms");
        assert_eq!(fmt_time(2.5e-6), "2.5000 us");
        assert_eq!(fmt_time(2.5e-9), "2.5000 ns");
    }
}
