//! E3 — §6.2.2 / Figure 7 + Appendix C: Convolution/Batch-Norm fusion on
//! ResNet50.
//!
//! Reproduces Appendix C's six rows: {GPU, CPU-threaded, CPU-unthreaded}
//! × {unfused, fused}. CPU rows are **measured** on this machine with
//! intra-op threading set to all cores / one core (the paper's
//! `OMP_NUM_THREADS=1`); the GPU row is **simulated** with the V100-like
//! roofline device model (DESIGN.md substitution: no GPU in this
//! environment; fusion's GPU-side effect — removing the BN kernels'
//! memory traffic and launches — is exactly what the roofline captures).
//!
//! Usage: `cargo run --release -p fx-bench --bin repro-fusion --
//! [--size 96] [--trials 5]`

use fx_bench::{arg_usize, print_table, time_trials};
use fx_core::{symbolic_trace, Value};
use fx_models::resnet50;
use fx_passes::{estimate, fuse_conv_bn, shape_prop, DeviceSpec};
use fx_tensor::Tensor;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

fn main() {
    let size = arg_usize("--size", 96);
    let trials = arg_usize("--trials", 5);
    let mut rng = StdRng::seed_from_u64(0);

    println!("ResNet50, input [1, 3, {size}, {size}], {trials} trials per cell");
    let model = resnet50(3, 1000, &mut rng);
    let unfused = symbolic_trace(&model).expect("trace");
    let mut fused = unfused.clone();
    let n = fuse_conv_bn(&mut fused).expect("fusion");
    println!(
        "fused {n} conv-bn pairs; graph {} -> {} nodes\n",
        unfused.graph().len(),
        fused.graph().len()
    );

    let x = Value::Tensor(Tensor::randn(&[1, 3, size, size], &mut rng));

    // --- simulated GPU rows (roofline, V100-like) ---
    // The paper's GPU rows use the full 224x224 ImageNet input; the
    // simulator is free, so match that regardless of the measured size.
    let v100 = DeviceSpec::v100();
    let sim_x = Value::Tensor(Tensor::randn(&[1, 3, 224, 224], &mut rng));
    let mut un_sim = unfused.clone();
    let mut fu_sim = fused.clone();
    shape_prop(&mut un_sim, std::slice::from_ref(&sim_x)).expect("shapes");
    shape_prop(&mut fu_sim, std::slice::from_ref(&sim_x)).expect("shapes");
    let gpu_unfused = estimate(&un_sim, &v100).expect("estimate").total_time;
    let gpu_fused = estimate(&fu_sim, &v100).expect("estimate").total_time;
    // Simulated Xeon rows at 224x224: on this 1-vCPU machine the
    // measured threaded/unthreaded rows coincide, so the paper's
    // threaded-vs-unthreaded contrast is reproduced on the device model
    // (20-thread vs 1-thread Xeon Gold 6138 specs).
    let xeon_t = DeviceSpec::xeon_6138();
    let xeon_1 = DeviceSpec::xeon_6138_single_thread();
    let cpu_sim = |gm: &fx_core::GraphModule, d: &DeviceSpec| {
        let mut g = gm.clone();
        shape_prop(&mut g, std::slice::from_ref(&sim_x)).expect("shapes");
        estimate(&g, d).expect("estimate").total_time
    };
    let xt_unfused = cpu_sim(&unfused, &xeon_t);
    let xt_fused = cpu_sim(&fused, &xeon_t);
    let x1_unfused = cpu_sim(&unfused, &xeon_1);
    let x1_fused = cpu_sim(&fused, &xeon_1);

    // --- measured CPU rows ---
    let run = |gm: &fx_core::GraphModule, threads: usize| {
        fx_tensor::set_num_threads(threads);
        let s = time_trials(trials, 1, || {
            std::hint::black_box(gm.run(std::slice::from_ref(&x)).unwrap());
        });
        fx_tensor::set_num_threads(0);
        s
    };
    println!("measuring CPU threaded...");
    let cpu_t_unfused = run(&unfused, 0);
    let cpu_t_fused = run(&fused, 0);
    println!("measuring CPU unthreaded (OMP_NUM_THREADS=1 analogue)...");
    let cpu_1_unfused = run(&unfused, 1);
    let cpu_1_fused = run(&fused, 1);

    println!("\n=== Appendix C analogue: ResNet50 runtime (seconds) ===\n");
    print_table(
        &["device", "fusion", "threads", "avg runtime (s)", "stdev", "latency cut"],
        &[
            vec![
                "GPU (sim)".into(),
                "Unfused".into(),
                "N/A".into(),
                format!("{gpu_unfused:.5}"),
                "-".into(),
                "-".into(),
            ],
            vec![
                "GPU (sim)".into(),
                "Fused".into(),
                "N/A".into(),
                format!("{gpu_fused:.5}"),
                "-".into(),
                format!("{:.1}%", 100.0 * (1.0 - gpu_fused / gpu_unfused)),
            ],
            vec![
                "CPU".into(),
                "Unfused".into(),
                "Threaded".into(),
                format!("{:.4}", cpu_t_unfused.mean),
                format!("{:.5}", cpu_t_unfused.stdev),
                "-".into(),
            ],
            vec![
                "CPU".into(),
                "Fused".into(),
                "Threaded".into(),
                format!("{:.4}", cpu_t_fused.mean),
                format!("{:.5}", cpu_t_fused.stdev),
                format!(
                    "{:.1}%",
                    100.0 * (1.0 - cpu_t_fused.mean / cpu_t_unfused.mean)
                ),
            ],
            vec![
                "CPU".into(),
                "Unfused".into(),
                "Unthreaded".into(),
                format!("{:.4}", cpu_1_unfused.mean),
                format!("{:.5}", cpu_1_unfused.stdev),
                "-".into(),
            ],
            vec![
                "CPU".into(),
                "Fused".into(),
                "Unthreaded".into(),
                format!("{:.4}", cpu_1_fused.mean),
                format!("{:.5}", cpu_1_fused.stdev),
                format!(
                    "{:.1}%",
                    100.0 * (1.0 - cpu_1_fused.mean / cpu_1_unfused.mean)
                ),
            ],
        ],
    );

    println!("\n=== simulated Xeon 6138 rows at 224x224 (paper's CPU testbed model) ===\n");
    print_table(
        &["device", "fusion", "sim runtime (s)", "latency cut"],
        &[
            vec!["Xeon 20-thread (sim)".into(), "Unfused".into(), format!("{xt_unfused:.5}"), "-".into()],
            vec![
                "Xeon 20-thread (sim)".into(),
                "Fused".into(),
                format!("{xt_fused:.5}"),
                format!("{:.1}%", 100.0 * (1.0 - xt_fused / xt_unfused)),
            ],
            vec!["Xeon 1-thread (sim)".into(), "Unfused".into(), format!("{x1_unfused:.5}"), "-".into()],
            vec![
                "Xeon 1-thread (sim)".into(),
                "Fused".into(),
                format!("{x1_fused:.5}"),
                format!("{:.1}%", 100.0 * (1.0 - x1_fused / x1_unfused)),
            ],
        ],
    );

    println!("\n=== Figure 7 analogue: normalized runtime (unfused = 1.0) ===\n");
    for (label, r) in [
        ("GPU (sim)           ", gpu_fused / gpu_unfused),
        ("CPU threaded (sim)  ", xt_fused / xt_unfused),
        ("CPU unthreaded (sim)", x1_fused / x1_unfused),
        ("CPU measured        ", cpu_1_fused.mean / cpu_1_unfused.mean),
    ] {
        let bar = "#".repeat((r * 40.0).round() as usize);
        println!("  {label} fused {r:>5.2}  {bar}");
    }
    println!("\npaper shape: fused wins everywhere; GPU ~6%, CPU threaded ~29%, CPU unthreaded ~15%");
}
