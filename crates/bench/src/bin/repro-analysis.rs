//! E5 — §6.3: program analysis on fx graphs.
//!
//! Demonstrates the three analysis systems the paper describes built on
//! torch.fx: (1) inference-at-scale simulation — FLOPs, memory traffic,
//! value sizes and roofline runtime on several device models; (2) shape
//! propagation, concrete and abstract; (3) Graphviz rendering (the DOT
//! file is written next to the binary's working directory).
//!
//! Usage: `cargo run --release -p fx-bench --bin repro-analysis --
//! [--size 64]`

use fx_bench::{arg_usize, print_table};
use fx_core::{symbolic_trace, Value};
use fx_models::{resnet50, Mlp};
use fx_passes::{
    estimate, infer_shapes, schedule_overlap, shape_prop, to_dot, DeviceSpec,
};
use fx_tensor::Tensor;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

fn main() {
    let size = arg_usize("--size", 64);
    let mut rng = StdRng::seed_from_u64(0);

    println!("== §6.3 program analysis on ResNet50 [1,3,{size},{size}] ==\n");
    let model = resnet50(3, 1000, &mut rng);
    let mut gm = symbolic_trace(&model).expect("trace");

    // --- shape propagation, both flavours, cross-checked ---
    let x = Value::Tensor(Tensor::randn(&[1, 3, size, size], &mut rng));
    shape_prop(&mut gm, std::slice::from_ref(&x)).expect("concrete shape prop");
    let mut gm_abs = symbolic_trace(&model).expect("trace");
    let inferred = infer_shapes(&mut gm_abs, &[vec![1, 3, size, size]]).expect("abstract");
    let agree = gm
        .graph()
        .nodes()
        .filter_map(|n| n.shape_meta().map(|s| (n.name().to_string(), s.to_vec())))
        .all(|(name, shape)| inferred.get(&name).map(|v| v == &shape).unwrap_or(true));
    println!(
        "shape propagation: {} nodes annotated; abstract == concrete: {agree}\n",
        inferred.len()
    );

    // --- per-device estimation ---
    println!("=== inference simulation across device models ===\n");
    let mut rows = Vec::new();
    for device in [
        DeviceSpec::v100(),
        DeviceSpec::xeon_6138(),
        DeviceSpec::xeon_6138_single_thread(),
        DeviceSpec::tpu_like(),
    ] {
        let report = estimate(&gm, &device).expect("estimate");
        rows.push(vec![
            device.name.to_string(),
            format!("{:.2}", report.total_flops as f64 / 1e9),
            format!("{:.1}", report.total_bytes as f64 / 1e6),
            format!("{:.3}", report.total_time * 1e3),
            format!("{:.1}", report.peak_activation_bytes as f64 / 1e6),
        ]);
    }
    print_table(
        &["device", "GFLOP", "MB moved", "est. runtime (ms)", "peak act. MB"],
        &rows,
    );

    let report = estimate(&gm, &DeviceSpec::v100()).expect("estimate");
    println!("\n{report}");

    // --- two-stream overlap scheduling (§6.2.3) ---
    let schedule = schedule_overlap(&gm, &DeviceSpec::xeon_6138(), &DeviceSpec::v100(), |n| {
        n.target().contains("conv") || n.target().contains("fc") || n.target() == "add"
    })
    .expect("schedule");
    println!(
        "two-stream overlap schedule: sequential {:.3} ms -> overlapped {:.3} ms ({:.2}x)",
        schedule.sequential * 1e3,
        schedule.makespan * 1e3,
        schedule.speedup()
    );

    // --- graph drawing on a small model (ResNet50 DOT is huge) ---
    let mlp = Mlp::new(&[64, 128, 10], &mut rng);
    let mut mlp_gm = symbolic_trace(&mlp).expect("trace mlp");
    shape_prop(&mut mlp_gm, &[Value::Tensor(Tensor::ones(&[1, 64]))]).expect("shapes");
    let dot = to_dot(&mlp_gm, "mlp");
    let path = std::env::temp_dir().join("fx_mlp.dot");
    std::fs::write(&path, &dot).expect("write dot");
    println!("\ngraph drawer: wrote {} ({} bytes); render with `dot -Tpng`", path.display(), dot.len());
    let big_dot = to_dot(&gm, "resnet50");
    println!("ResNet50 DOT would be {} bytes over {} nodes", big_dot.len(), gm.graph().len());
}
