//! E4 — §6.4 / Figure 8 + Appendix D: lowering ResNet50 and
//! LearningToPaint to the TensorRT-like backend.
//!
//! Reproduces Appendix D's four rows: baseline vs lowered runtime for
//! both models. "Baseline" is the traced graph on the interpreter (the
//! per-op eager path); "lowered" is the ahead-of-time fused engine
//! produced by `fx-backend`. Also prints roofline-simulated V100 rows
//! for the GPU-side reading (DESIGN.md substitution).
//!
//! Usage: `cargo run --release -p fx-bench --bin repro-trt --
//! [--size 96] [--paint-size 64] [--trials 10]`

use fx_backend::lower;
use fx_bench::{arg_usize, print_table, time_trials, Stats};
use fx_core::{symbolic_trace, GraphModule, Value};
use fx_models::{resnet50, LearningToPaintActor};
use fx_passes::{estimate, fuse_conv_bn, shape_prop, DeviceSpec};
use fx_tensor::Tensor;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

struct Row {
    config: String,
    stats: Stats,
    speedup: Option<f64>,
}

fn bench_model(name: &str, gm: &GraphModule, x: &Value, trials: usize) -> (Vec<Row>, f64) {
    let (lowered, report) = lower(gm).expect("lowering");
    println!(
        "{name}: {} engine partition(s), {} fallback; {} graph nodes -> {} fused instructions",
        report.engine_partitions,
        report.fallback_partitions,
        report.source_nodes,
        report.engine_instructions
    );
    let base = time_trials(trials, 1, || {
        std::hint::black_box(gm.run(std::slice::from_ref(x)).unwrap());
    });
    let eng = time_trials(trials, 1, || {
        std::hint::black_box(lowered.run(std::slice::from_ref(x)).unwrap());
    });
    let speedup = base.mean / eng.mean;
    (
        vec![
            Row {
                config: format!("eager {name}"),
                stats: base,
                speedup: None,
            },
            Row {
                config: format!("fx lowered {name}"),
                stats: eng,
                speedup: Some(speedup),
            },
        ],
        speedup,
    )
}

/// Roofline view: baseline pays per-op dispatch on the unfused graph;
/// the lowered engine pays per-*fused-instruction* launch overhead on
/// the fused graph (TensorRT's actual economics).
fn simulate(gm: &GraphModule, x: &Value) -> (f64, f64) {
    let v100 = DeviceSpec::v100();
    let mut base = gm.clone();
    shape_prop(&mut base, std::slice::from_ref(x)).expect("shapes");
    let base_t = estimate(&base, &v100).expect("estimate").total_time;
    let mut fused = gm.clone();
    fuse_conv_bn(&mut fused).expect("fuse");
    shape_prop(&mut fused, std::slice::from_ref(x)).expect("shapes");
    let fused_report = estimate(&fused, &v100).expect("estimate");
    // Engine fuses activations/adds too: roughly halves launch count.
    let launches_saved = fused_report.nodes.len() as f64 * 0.5 * v100.dispatch_overhead;
    (base_t, (fused_report.total_time - launches_saved).max(0.0))
}

fn main() {
    let size = arg_usize("--size", 96);
    let paint_size = arg_usize("--paint-size", 64);
    let trials = arg_usize("--trials", 10);
    let mut rng = StdRng::seed_from_u64(0);

    println!("== ResNet50 [1,3,{size},{size}] / LearningToPaint [1,9,{paint_size},{paint_size}], {trials} trials ==\n");

    let rn50 = resnet50(3, 1000, &mut rng);
    let rn50_gm = symbolic_trace(&rn50).expect("trace rn50");
    let rn50_x = Value::Tensor(Tensor::randn(&[1, 3, size, size], &mut rng));
    let (rn_rows, rn_speedup) = bench_model("RN50", &rn50_gm, &rn50_x, trials);

    let actor = LearningToPaintActor::new(&mut rng);
    let actor_gm = symbolic_trace(&actor).expect("trace actor");
    let actor_x = Value::Tensor(Tensor::randn(&[1, 9, paint_size, paint_size], &mut rng));
    let (ltp_rows, ltp_speedup) = bench_model("LearningToPaint", &actor_gm, &actor_x, trials);

    println!("\n=== Appendix D analogue: measured CPU runtime (seconds) ===\n");
    let rows: Vec<Vec<String>> = rn_rows
        .iter()
        .chain(&ltp_rows)
        .map(|r| {
            vec![
                r.config.clone(),
                format!("{:.4}", r.stats.mean),
                format!("{:.5}", r.stats.stdev),
                r.speedup
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(&["configuration", "avg runtime (s)", "stdev", "speedup"], &rows);

    let (rn_sim_base, rn_sim_eng) = simulate(&rn50_gm, &rn50_x);
    let (ltp_sim_base, ltp_sim_eng) = simulate(&actor_gm, &actor_x);
    println!("\n=== V100 roofline simulation (GPU-side reading) ===\n");
    print_table(
        &["configuration", "sim runtime (s)", "speedup"],
        &[
            vec!["eager RN50 (sim)".into(), format!("{rn_sim_base:.5}"), "-".into()],
            vec![
                "TRT-like RN50 (sim)".into(),
                format!("{rn_sim_eng:.5}"),
                format!("{:.2}x", rn_sim_base / rn_sim_eng),
            ],
            vec![
                "eager LearningToPaint (sim)".into(),
                format!("{ltp_sim_base:.5}"),
                "-".into(),
            ],
            vec![
                "TRT-like LearningToPaint (sim)".into(),
                format!("{ltp_sim_eng:.5}"),
                format!("{:.2}x", ltp_sim_base / ltp_sim_eng),
            ],
        ],
    );

    println!("\n=== Figure 8 analogue: normalized runtime (eager = 1.0, measured) ===\n");
    for (label, s) in [("RN50           ", rn_speedup), ("LearningToPaint", ltp_speedup)] {
        let r = 1.0 / s;
        let bar = "#".repeat((r * 40.0).round() as usize);
        println!("  {label} lowered {r:>5.2}  {bar}");
    }
    println!("\npaper shape: lowered wins on both; RN50 3.7x, LearningToPaint 1.54x (V100+TensorRT)");
}
