//! E1 — §6.1 / Figure 5: IR complexity of ResNet50 under four
//! representations.
//!
//! Prints op counts for (a) fx at module level (default tracer), (b) fx
//! at functional level (trace-through-everything tracer — the
//! granularity whose ResNet50 count the paper reports as 445), (c) the
//! jit.trace-style rich IR, and (d) the jit.script-style rich IR with
//! control flow, plus excerpts of each in the style of Figure 5.
//!
//! Usage: `cargo run --release -p fx-bench --bin repro-ir`

use fx_bench::print_table;
use fx_core::{symbolic_trace, symbolic_trace_with};
use fx_jit::{script_compile, trace_lower, NoLeafTracer};
use fx_models::resnet50;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;
use std::sync::Arc;

fn main() {
    let mut rng = StdRng::seed_from_u64(0);
    println!("building ResNet50 (this allocates the full 25.6M parameters)...");
    let model = resnet50(3, 1000, &mut rng);

    let fx_module = symbolic_trace(&model).expect("module-level trace");
    let fx_functional =
        symbolic_trace_with(&model, Arc::new(NoLeafTracer)).expect("functional-level trace");
    let jit_trace = trace_lower(&fx_module).expect("jit.trace-style lowering");
    let jit_script = script_compile(&model).expect("jit.script-style compilation");

    let fx_fn_count = fx_functional.graph().len();
    let trace_count = jit_trace.op_count();
    let script_count = jit_script.op_count();

    println!("\n=== Figure 5 / §6.1: ResNet50 IR op counts ===\n");
    print_table(
        &["representation", "ops", "paper", "vs fx (functional)"],
        &[
            vec![
                "fx IR, module-level (default tracer)".into(),
                fx_module.graph().len().to_string(),
                "-".into(),
                format!("{:.2}x", fx_module.graph().len() as f64 / fx_fn_count as f64),
            ],
            vec![
                "fx IR, functional-level".into(),
                fx_fn_count.to_string(),
                "445".into(),
                "1.00x".into(),
            ],
            vec![
                "jit.trace-style rich IR".into(),
                trace_count.to_string(),
                "860".into(),
                format!("{:.2}x", trace_count as f64 / fx_fn_count as f64),
            ],
            vec![
                "jit.script-style rich IR".into(),
                script_count.to_string(),
                "2614".into(),
                format!("{:.2}x", script_count as f64 / fx_fn_count as f64),
            ],
        ],
    );

    println!("\nshape checks (paper's qualitative claims):");
    println!(
        "  script >> trace > fx:         {}",
        script_count > trace_count && trace_count > fx_fn_count
    );
    println!(
        "  fx is ~half of jit.trace:     {:.2} (paper: 445/860 = 0.52)",
        fx_fn_count as f64 / trace_count as f64
    );
    println!(
        "  script/fx ratio:              {:.2} (paper: 2614/445 = 5.87)",
        script_count as f64 / fx_fn_count as f64
    );

    println!("\n--- Figure 5(a) analogue: jit.script-style IR (first lines) ---");
    print!("{}", jit_script.dump(14));

    println!("\n--- Figure 5(b) analogue: fx IR (first lines) ---");
    for line in fx_module.graph().to_string().lines().take(8) {
        println!("{line}");
    }
    println!("...");

    println!("\n--- generated code (first lines) ---");
    for line in fx_module.code().lines().take(6) {
        println!("{line}");
    }
    println!("...");

    println!("\nper-opcode histogram (jit.script-style):");
    for (k, v) in script_compile(&model).unwrap().histogram() {
        println!("  {k:<28} {v}");
    }
}
