//! E2 — §6.2.1 / Figure 6 + Appendix B: post-training int8 quantization
//! of DeepRecommender.
//!
//! Reproduces Appendix B's table: mean/stdev inference runtime for the
//! unquantized (f32) and quantized (int8) model across batch sizes
//! {1, 16, 64, 128, 256}, plus Figure 6's normalized runtimes.
//!
//! Substitution note (DESIGN.md): the paper ran FBGEMM on a Xeon Gold
//! 6138; here both numeric paths are this repo's own kernels, so the
//! *shape* — quantized wins everywhere, by a factor that shrinks as the
//! batch grows and the workload becomes compute-bound — is the claim
//! under test, not absolute times.
//!
//! Usage: `cargo run --release -p fx-bench --bin repro-quant --
//! [--items 4096] [--trials 10]`

use fx_bench::{arg_usize, print_table, time_trials};
use fx_core::{symbolic_trace, Value};
use fx_models::DeepRecommender;
use fx_quant::{quantize_ptq, QConfig};
use fx_tensor::Tensor;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

fn main() {
    let n_items = arg_usize("--items", 4096);
    let trials = arg_usize("--trials", 10);
    let mut rng = StdRng::seed_from_u64(0);

    println!("DeepRecommender with {n_items} items; {trials} trials per cell");
    let model = DeepRecommender::new(n_items, &mut rng);
    let gm = symbolic_trace(&model).expect("trace");

    // Calibrate on realistic rating-vector batches (sparse positives).
    let calibration: Vec<Vec<Value>> = (0..8)
        .map(|_| {
            vec![Value::Tensor(Tensor::rand_uniform(
                &[16, n_items],
                0.0,
                5.0,
                &mut rng,
            ))]
        })
        .collect();
    let qgm = quantize_ptq(&gm, &calibration, &QConfig::default()).expect("ptq");
    println!(
        "quantized: {} QuantizedLinear modules, graph {} -> {} nodes\n",
        qgm.modules()
            .values()
            .filter(|m| m.type_name().starts_with("QuantizedLinear"))
            .count(),
        gm.graph().len(),
        qgm.graph().len()
    );

    let mut rows = Vec::new();
    let mut norm = Vec::new();
    for &batch in &[1usize, 16, 64, 128, 256] {
        let x = Value::Tensor(Tensor::rand_uniform(&[batch, n_items], 0.0, 5.0, &mut rng));
        let fp = time_trials(trials, 2, || {
            std::hint::black_box(gm.run(std::slice::from_ref(&x)).unwrap());
        });
        let q = time_trials(trials, 2, || {
            std::hint::black_box(qgm.run(std::slice::from_ref(&x)).unwrap());
        });
        rows.push(vec![
            batch.to_string(),
            format!("{:.4}", fp.mean),
            format!("{:.5}", fp.stdev),
            format!("{:.4}", q.mean),
            format!("{:.5}", q.stdev),
            format!("{:.2}x", fp.mean / q.mean),
        ]);
        norm.push((batch, q.mean / fp.mean));
    }

    println!("=== Appendix B analogue: DeepRecommender runtime (seconds) ===\n");
    print_table(
        &[
            "batch",
            "runtime f32",
            "stdev f32",
            "runtime int8",
            "stdev int8",
            "speedup",
        ],
        &rows,
    );

    println!("\n=== Figure 6 analogue: normalized inference runtime (f32 = 1.0) ===\n");
    for (batch, r) in &norm {
        let bar = "#".repeat((r * 40.0).round() as usize);
        println!("  batch {batch:>4}  int8 {r:>5.2}  {bar}");
    }
    println!("\npaper shape: speedup largest at batch 1 (~3.5x) shrinking toward ~1.1x at 256");
}
