//! # fx-bench — harnesses reproducing the paper's tables and figures
//!
//! One binary per experiment (run with `--release`):
//!
//! | binary | paper result |
//! |---|---|
//! | `repro-ir` | §6.1 / Figure 5 — IR complexity counts + excerpts |
//! | `repro-quant` | §6.2.1 / Figure 6 + Appendix B — DeepRecommender PTQ |
//! | `repro-fusion` | §6.2.2 / Figure 7 + Appendix C — conv–BN fusion |
//! | `repro-trt` | §6.4 / Figure 8 + Appendix D — backend lowering |
//! | `repro-analysis` | §6.3 — FLOPs/memory/runtime estimation, shapes, DOT |
//!
//! plus Criterion benches (`cargo bench`) covering the same workloads at
//! reduced scale.
//!
//! Measured-CPU numbers and roofline-simulated numbers are always
//! labelled separately; see `EXPERIMENTS.md` at the workspace root for
//! the paper-vs-measured record.

#![warn(missing_docs)]

pub mod criterion;

use std::time::Instant;

/// Mean/stdev over timing trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Mean seconds per trial.
    pub mean: f64,
    /// Standard deviation of seconds per trial.
    pub stdev: f64,
}

impl Stats {
    /// Compute from raw per-trial seconds.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "need at least one sample");
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        Stats {
            mean,
            stdev: var.sqrt(),
        }
    }
}

/// Run `f` `warmup + trials` times, timing the last `trials`.
pub fn time_trials(trials: usize, warmup: usize, mut f: impl FnMut()) -> Stats {
    for _ in 0..warmup {
        f();
    }
    let samples: Vec<f64> = (0..trials.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    Stats::from_samples(&samples)
}

/// Fixed-width table printer for the harness outputs.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        line(row);
    }
}

/// `--flag value` style argument lookup with a default.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let s = Stats::from_samples(&[1.0, 1.0, 1.0]);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.stdev, 0.0);
        let s = Stats::from_samples(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stdev, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn stats_rejects_empty() {
        let _ = Stats::from_samples(&[]);
    }

    #[test]
    fn timing_returns_positive_mean() {
        let s = time_trials(3, 1, || {
            std::hint::black_box((0..1000).sum::<usize>());
        });
        assert!(s.mean >= 0.0);
    }
}
