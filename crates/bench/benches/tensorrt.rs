//! Criterion bench for E4 (§6.4 / Figure 8 / Appendix D): eager
//! interpreter vs the TensorRT-like compiled engine, on ResNet-18 and
//! the LearningToPaint actor. `repro-trt` runs the full-scale ResNet50
//! version plus the roofline-simulated V100 rows.

use fx_bench::criterion::{criterion_group, criterion_main, Criterion};
use fx_backend::lower;
use fx_core::{symbolic_trace, Value};
use fx_models::{resnet18, LearningToPaintActor};
use fx_tensor::Tensor;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

fn tensorrt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut group = c.benchmark_group("backend_lowering");
    group.sample_size(10);

    let rn18 = resnet18(3, 1000, &mut rng);
    let gm = symbolic_trace(&rn18).unwrap();
    let (lowered, report) = lower(&gm).unwrap();
    println!(
        "[tensorrt] RN18: {} nodes -> {} fused instructions ({} partitions)",
        report.source_nodes, report.engine_instructions, report.engine_partitions
    );
    let x = Value::Tensor(Tensor::randn(&[1, 3, 64, 64], &mut rng));
    group.bench_function("eager_resnet18", |b| {
        b.iter(|| gm.run(std::slice::from_ref(&x)).unwrap())
    });
    group.bench_function("lowered_resnet18", |b| {
        b.iter(|| lowered.run(std::slice::from_ref(&x)).unwrap())
    });

    let actor = LearningToPaintActor::new(&mut rng);
    let agm = symbolic_trace(&actor).unwrap();
    let (alowered, _) = lower(&agm).unwrap();
    let ax = Value::Tensor(Tensor::randn(&[1, 9, 64, 64], &mut rng));
    group.bench_function("eager_learningtopaint", |b| {
        b.iter(|| agm.run(std::slice::from_ref(&ax)).unwrap())
    });
    group.bench_function("lowered_learningtopaint", |b| {
        b.iter(|| alowered.run(std::slice::from_ref(&ax)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, tensorrt);
criterion_main!(benches);
