//! Serving smoke bench: the `fx_serve` dynamic batcher vs. a
//! one-request-at-a-time baseline on ResNet-50.
//!
//! The baseline answers each request with its own `Executor` run at
//! batch 1 — what a naive server loop would do. The batched side runs
//! the real server: 4 client threads fire the same requests through a
//! `Handle`, the batcher coalesces them, and each batch costs one
//! executor run over the stacked rows. Kernel threading is pinned to 1
//! on both sides, so any win is pure batching: fewer per-run
//! fixed costs (executor dispatch, one im2col+GEMM per conv *group*
//! instead of per image, bigger GEMMs running closer to peak).
//!
//! A second section exercises the multi-tenant [`Registry`]: each
//! model's solo throughput on the shared worker pool, then both models
//! together under weighted-fair scheduling (per-model rps/p50/p99 and
//! the fraction of fair-share throughput each achieved), then a hot
//! swap under sustained load (swap wall time, zero failed requests).
//!
//! A third section serves the **int8** ResNet-50: the same graph put
//! through PTQ (fuse conv+BN, calibrate, convert) and served with the
//! identical batch configuration. The converted graph is f32-in/f32-out
//! (quantize/dequantize boundary nodes), so clients and the batcher are
//! unchanged — the int8 GEMM microkernel and the dtype-aware buffer
//! pool do the work. This reproduces the shape of the paper's §6.2.1
//! quantization speedup under serving load.
//!
//! Results go to `BENCH_serve.json` at the workspace root:
//! requests/second for both sides, the speedup, the server's own
//! latency percentiles and batch-size histogram, the per-model
//! registry rows, and the quant section.

use fx_core::{symbolic_trace, Executor, GraphModule, Value};
use fx_models::{resnet50, DeepRecommender};
use fx_serve::{ModelConfig, Registry, Server};
use fx_tensor::rng::{SeedableRng, StdRng};
use fx_tensor::{set_num_threads, Tensor};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const REQUESTS: usize = 240;
const CLIENTS: usize = 4;
const MAX_BATCH: usize = 8;

// Multi-model section: a saturating closed loop per model so the
// deficit-round-robin scheduler always has backlog to arbitrate.
const REG_WORKERS: usize = 2;
const REG_CLIENTS_RESNET: usize = 8;
// The light model needs far more closed-loop clients to keep backlog
// in its lane while heavy batches occupy the workers — otherwise the
// measurement is offered-load-bound, not scheduler-bound.
const REG_CLIENTS_RECO: usize = 128;
const REG_DURATION: Duration = Duration::from_millis(2000);

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// One `Executor` run per request at batch 1: the no-batching server.
fn run_baseline(gm: &GraphModule, requests: &[Tensor]) -> (f64, Vec<f64>) {
    let start = Instant::now();
    let mut lat = Vec::with_capacity(requests.len());
    for x in requests {
        let t0 = Instant::now();
        Executor::new(gm)
            .with_threads(1)
            .run(&[Value::Tensor(x.clone())])
            .expect("baseline run");
        lat.push(t0.elapsed().as_secs_f64());
    }
    let wall = start.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.total_cmp(b));
    (requests.len() as f64 / wall, lat)
}

/// The same requests through the dynamic-batching server, from
/// `CLIENTS` concurrent client threads.
fn run_served(gm: &GraphModule, requests: &[Tensor]) -> (f64, fx_serve::ServeStats) {
    let server = Server::builder(gm.clone(), &[vec![1, 3, 32, 32]])
        .max_batch_size(MAX_BATCH)
        .max_batch_delay(Duration::from_millis(2))
        .queue_depth(REQUESTS + CLIENTS)
        .build()
        .expect("resnet50 is batch-polymorphic");

    let start = Instant::now();
    std::thread::scope(|s| {
        for chunk in requests.chunks(requests.len().div_ceil(CLIENTS)) {
            let handle = server.handle();
            s.spawn(move || {
                for x in chunk {
                    handle.infer(vec![x.clone()]).expect("served run");
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(stats.requests_ok, requests.len() as u64);
    (requests.len() as f64 / wall, stats)
}

/// One registry model under saturating closed-loop load: `clients`
/// threads spin submitting a fixed request until time is up. Returns
/// (rps, p50_s, p99_s).
fn hammer(
    registry: &Registry,
    name: &str,
    x: &Tensor,
    duration: Duration,
    clients: usize,
) -> (f64, f64, f64, f64) {
    let handle = registry.handle(name).expect("model registered");
    let before = handle.stats();
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            let handle = handle.clone();
            s.spawn(move || {
                while start.elapsed() < duration {
                    handle.infer(vec![x.clone()]).expect("bench infer");
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let after = handle.stats();
    let done = after.requests_ok - before.requests_ok;
    (
        done as f64 / wall,
        after.p50_latency_s,
        after.p99_latency_s,
        after.exec_seconds - before.exec_seconds,
    )
}

struct ModelRow {
    name: &'static str,
    weight: u32,
    solo_rps: f64,
    fair_rps: f64,
    p50_s: f64,
    p99_s: f64,
    /// Achieved worker-time share ÷ the weight share the scheduler
    /// owes the model — the fairness criterion. Time, not rps, is what
    /// weighted-fair scheduling allocates, and this ratio is immune to
    /// the solo-throughput drift of a shared host.
    fair_share_fraction: f64,
    /// Informational: fair-phase rps ÷ (solo rps × weight share).
    /// Tracks the time-based ratio but inherits solo-run noise.
    throughput_vs_solo_share: f64,
}

/// Solo throughput per model, then both together under weighted-fair
/// scheduling on the same worker pool, then a hot swap of the vision
/// model while both loads run. Returns the per-model rows plus the
/// swap row fields (swap wall seconds, requests completed during the
/// swap window, failed requests).
fn run_registry_bench(
    resnet: &GraphModule,
    recommender: &GraphModule,
    resnet_v2: &GraphModule,
) -> (Vec<ModelRow>, f64, u64, u64) {
    let rx = randn_like(&[1, 3, 32, 32], 11);
    let dx = randn_like(&[1, 64], 12);
    const W_RESNET: u32 = 2;
    const W_RECO: u32 = 1;

    // Batch size pinned to 1: solo and shared runs then pay the same
    // per-row cost, so the fair-share fraction isolates the scheduler's
    // time allocation instead of coalescing-efficiency differences.
    let cfg_resnet = || {
        ModelConfig::new()
            .max_batch_size(1)
            .max_batch_delay(Duration::from_millis(1))
            .weight(W_RESNET)
    };
    // A short linger (long enough to coalesce a resubmission burst,
    // short enough not to idle the lane) and a batch size well below
    // the client count, so several batches stay pipelined and the lane
    // is backlogged whenever a worker frees — DRR arbitrates backlog.
    let cfg_reco = || {
        ModelConfig::new()
            .max_batch_size(16)
            .max_batch_delay(Duration::from_micros(200))
            .weight(W_RECO)
    };

    // Solo runs: each model alone on an identical worker pool.
    let solo = |gm: &GraphModule, shape: Vec<usize>, x: &Tensor, cfg: ModelConfig, clients: usize| -> f64 {
        let registry = Registry::builder().workers(REG_WORKERS).build().unwrap();
        registry
            .register_with("m", gm.clone(), &[shape], cfg)
            .expect("solo registration");
        let (rps, _, _, _) = hammer(&registry, "m", x, REG_DURATION, clients);
        registry.shutdown();
        rps
    };
    let solo_resnet = solo(resnet, vec![1, 3, 32, 32], &rx, cfg_resnet(), REG_CLIENTS_RESNET);
    let solo_reco = solo(recommender, vec![1, 64], &dx, cfg_reco(), REG_CLIENTS_RECO);
    println!("  solo: resnet50 {solo_resnet:.2} req/s, recommender {solo_reco:.2} req/s");

    // Both models together, weighted 2:1, saturating load on each.
    let registry = Registry::builder().workers(REG_WORKERS).build().unwrap();
    registry
        .register_with("resnet50", resnet.clone(), &[vec![1, 3, 32, 32]], cfg_resnet())
        .expect("resnet registers");
    registry
        .register_with("recommender", recommender.clone(), &[vec![1, 64]], cfg_reco())
        .expect("recommender registers");

    let ((resnet_rps, resnet_p50, resnet_p99, resnet_exec), (reco_rps, reco_p50, reco_p99, reco_exec)) =
        std::thread::scope(|s| {
            let a = s.spawn(|| hammer(&registry, "resnet50", &rx, REG_DURATION, REG_CLIENTS_RESNET));
            let b = s.spawn(|| hammer(&registry, "recommender", &dx, REG_DURATION, REG_CLIENTS_RECO));
            (a.join().unwrap(), b.join().unwrap())
        });
    let exec_total = resnet_exec + reco_exec;

    // Hot swap the vision model while both loads are still running.
    let stop = AtomicBool::new(false);
    let (swap_wall_s, swapped_ok, swap_errs) = std::thread::scope(|s| {
        let loads: Vec<_> = (0..2 * REG_CLIENTS_RESNET)
            .map(|i| {
                let registry = &registry;
                let (rx, dx, stop) = (&rx, &dx, &stop);
                s.spawn(move || {
                    let (name, x) = if i % 2 == 0 { ("resnet50", rx) } else { ("recommender", dx) };
                    let handle = registry.handle(name).expect("registered");
                    let mut ok = 0u64;
                    let mut err = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        match handle.infer(vec![x.clone()]) {
                            Ok(_) => ok += 1,
                            Err(_) => err += 1,
                        }
                    }
                    (ok, err)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(100));
        let t0 = Instant::now();
        registry.swap("resnet50", resnet_v2.clone()).expect("swap under load");
        let swap_wall_s = t0.elapsed().as_secs_f64();
        std::thread::sleep(Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        let (mut ok, mut err) = (0u64, 0u64);
        for j in loads {
            let (o, e) = j.join().unwrap();
            ok += o;
            err += e;
        }
        (swap_wall_s, ok, err)
    });
    registry.shutdown();

    let total_w = (W_RESNET + W_RECO) as f64;
    let rows = vec![
        ModelRow {
            name: "resnet50",
            weight: W_RESNET,
            solo_rps: solo_resnet,
            fair_rps: resnet_rps,
            p50_s: resnet_p50,
            p99_s: resnet_p99,
            fair_share_fraction: (resnet_exec / exec_total) / (W_RESNET as f64 / total_w),
            throughput_vs_solo_share: resnet_rps / (solo_resnet * W_RESNET as f64 / total_w),
        },
        ModelRow {
            name: "recommender",
            weight: W_RECO,
            solo_rps: solo_reco,
            fair_rps: reco_rps,
            p50_s: reco_p50,
            p99_s: reco_p99,
            fair_share_fraction: (reco_exec / exec_total) / (W_RECO as f64 / total_w),
            throughput_vs_solo_share: reco_rps / (solo_reco * W_RECO as f64 / total_w),
        },
    ];
    (rows, swap_wall_s, swapped_ok, swap_errs)
}

fn randn_like(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape, &mut rng)
}

/// PTQ the f32 ResNet-50: fuse conv+BN so the quantizer sees plain
/// convs, calibrate on a few batches, convert to int8 modules.
fn quantize_resnet(gm: &GraphModule) -> GraphModule {
    let mut fused = gm.clone();
    fx_passes::fuse_conv_bn(&mut fused).expect("conv+BN fuse");
    let mut crng = StdRng::seed_from_u64(77);
    let calibration: Vec<Vec<Value>> = (0..4)
        .map(|_| vec![Value::Tensor(Tensor::randn(&[2, 3, 32, 32], &mut crng))])
        .collect();
    fx_quant::quantize_ptq(&fused, &calibration, &fx_quant::QConfig::default())
        .expect("resnet50 quantizes")
}

fn main() {
    let mut rng = StdRng::seed_from_u64(50);
    let model = resnet50(3, 10, &mut rng);
    let gm = symbolic_trace(&model).expect("resnet50 traces");
    let mut xrng = StdRng::seed_from_u64(1);
    let requests: Vec<Tensor> = (0..REQUESTS)
        .map(|_| Tensor::randn(&[1, 3, 32, 32], &mut xrng))
        .collect();

    // Both sides get exactly one kernel thread; the contest is purely
    // request batching, not intra-op parallelism.
    set_num_threads(1);
    let kernel_threads = fx_tensor::num_threads();

    // Warm the plan cache so neither side pays compilation.
    Executor::new(&gm)
        .run(&[Value::Tensor(requests[0].clone())])
        .expect("warmup");

    println!("serving bench: {REQUESTS} requests, {CLIENTS} clients, max batch {MAX_BATCH} rows");
    let (base_rps, base_lat) = run_baseline(&gm, &requests);
    println!("  baseline (batch=1): {base_rps:.2} req/s");
    let (served_rps, stats) = run_served(&gm, &requests);
    println!("  served  (batched):  {served_rps:.2} req/s");
    println!("{stats}");

    let speedup = served_rps / base_rps;
    println!("  speedup: {speedup:.3}x");

    // Int8 serving: the same model PTQ-converted, served with the
    // identical batch configuration against the f32 run above.
    println!("quant bench: served int8 resnet50 vs served f32, same batch config");
    let qgm = quantize_resnet(&gm);
    Executor::new(&qgm)
        .run(&[Value::Tensor(requests[0].clone())])
        .expect("int8 warmup");
    let (int8_rps, int8_stats) = run_served(&qgm, &requests);
    let quant_speedup = int8_rps / served_rps;
    println!(
        "  int8 served: {int8_rps:.2} req/s ({quant_speedup:.3}x f32 served), \
         pool hit rate {:.4}",
        int8_stats.pool_hit_rate
    );
    assert!(
        quant_speedup >= 1.3,
        "served int8 resnet50 must be >= 1.3x the served f32 baseline, got {quant_speedup:.3}x"
    );
    assert!(
        int8_stats.pool_hit_rate >= 0.99,
        "dtype-aware pool hit rate too low on the int8 path: {:.4}",
        int8_stats.pool_hit_rate
    );

    println!(
        "registry bench: 2 models, {REG_WORKERS} workers, \
         {REG_CLIENTS_RESNET}/{REG_CLIENTS_RECO} clients, {:.1}s per phase",
        REG_DURATION.as_secs_f64()
    );
    let mut rrng = StdRng::seed_from_u64(61);
    let resnet_v2 = symbolic_trace(&resnet50(3, 10, &mut rrng)).expect("resnet50 v2 traces");
    let mut drng = StdRng::seed_from_u64(52);
    let recommender =
        symbolic_trace(&DeepRecommender::new(64, &mut drng)).expect("recommender traces");
    let (rows, swap_wall_s, swap_ok, swap_errs) = run_registry_bench(&gm, &recommender, &resnet_v2);
    for r in &rows {
        println!(
            "  {:<12} w={} solo {:>9.2} req/s | fair {:>9.2} req/s | p50 {:.4}s p99 {:.4}s \
             | {:.1}% of fair share ({:.1}% of solo-share rps)",
            r.name,
            r.weight,
            r.solo_rps,
            r.fair_rps,
            r.p50_s,
            r.p99_s,
            100.0 * r.fair_share_fraction,
            100.0 * r.throughput_vs_solo_share
        );
        assert!(
            r.fair_share_fraction >= 0.8,
            "{} achieved only {:.1}% of its fair-share throughput",
            r.name,
            100.0 * r.fair_share_fraction
        );
    }
    println!(
        "  swap under load: {swap_wall_s:.4}s wall, {swap_ok} requests completed, \
         {swap_errs} failed"
    );
    assert_eq!(swap_errs, 0, "hot swap under load must not fail a request");
    set_num_threads(0);

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str("  \"model\": \"resnet50(3,10) @ [1,3,32,32]\",\n");
    out.push_str(&format!(
        "  \"requests\": {REQUESTS}, \"clients\": {CLIENTS}, \"max_batch_rows\": {MAX_BATCH},\n"
    ));
    out.push_str(&format!("  \"kernel_threads\": {kernel_threads},\n"));
    out.push_str(&format!(
        "  \"hardware_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!(
        "  \"baseline\": {{ \"throughput_rps\": {:.3}, \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6} }},\n",
        base_rps,
        quantile(&base_lat, 0.50),
        quantile(&base_lat, 0.99)
    ));
    out.push_str(&format!(
        "  \"served\": {{ \"throughput_rps\": {:.3}, \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6}, \
\"mean_batch_rows\": {:.3}, \"batches\": {}, \"plan_cache_hits\": {}, \"queue_high_water\": {} }},\n",
        served_rps,
        stats.p50_latency_s,
        stats.p99_latency_s,
        stats.mean_batch_rows,
        stats.batches,
        stats.plan_cache_hits,
        stats.queue_high_water
    ));
    out.push_str(&format!(
        "  \"pool\": {{ \"fresh_allocs\": {}, \"hits\": {}, \"hit_rate\": {:.4}, \"peak_bytes\": {} }},\n",
        stats.pool_fresh_allocs, stats.pool_hits, stats.pool_hit_rate, stats.pool_peak_bytes
    ));
    out.push_str(&format!("  \"speedup_batched_vs_serial\": {speedup:.3},\n"));
    out.push_str(&format!(
        "  \"quant\": {{ \"model\": \"resnet50(3,10) int8 PTQ @ [1,3,32,32]\", \
\"served_f32_rps\": {:.3}, \"served_int8_rps\": {:.3}, \"speedup_int8_vs_f32\": {:.3}, \
\"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6}, \"mean_batch_rows\": {:.3}, \
\"requests_failed\": {}, \"pool_hit_rate\": {:.4}, \"pool_peak_bytes\": {} }},\n",
        served_rps,
        int8_rps,
        quant_speedup,
        int8_stats.p50_latency_s,
        int8_stats.p99_latency_s,
        int8_stats.mean_batch_rows,
        int8_stats.requests_err,
        int8_stats.pool_hit_rate,
        int8_stats.pool_peak_bytes
    ));
    out.push_str(&format!(
        "  \"registry\": {{ \"workers\": {REG_WORKERS}, \
\"clients\": {{ \"resnet50\": {REG_CLIENTS_RESNET}, \"recommender\": {REG_CLIENTS_RECO} }}, \
\"phase_seconds\": {:.3},\n",
        REG_DURATION.as_secs_f64()
    ));
    out.push_str("    \"models\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{ \"model\": \"{}\", \"weight\": {}, \"solo_rps\": {:.3}, \
\"fair_rps\": {:.3}, \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6}, \
\"fair_share_fraction\": {:.4}, \"throughput_vs_solo_share\": {:.4} }}{}\n",
            r.name,
            r.weight,
            r.solo_rps,
            r.fair_rps,
            r.p50_s,
            r.p99_s,
            r.fair_share_fraction,
            r.throughput_vs_solo_share,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("    ],\n");
    out.push_str(&format!(
        "    \"swap_under_load\": {{ \"model\": \"resnet50\", \"swap_wall_s\": {swap_wall_s:.6}, \
\"requests_completed\": {swap_ok}, \"requests_failed\": {swap_errs} }}\n"
    ));
    out.push_str("  }\n");
    out.push_str("}\n");

    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_serve.json");
    f.write_all(out.as_bytes()).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
