//! Serving smoke bench: the `fx_serve` dynamic batcher vs. a
//! one-request-at-a-time baseline on ResNet-50.
//!
//! The baseline answers each request with its own `Executor` run at
//! batch 1 — what a naive server loop would do. The batched side runs
//! the real server: 4 client threads fire the same requests through a
//! `Handle`, the batcher coalesces them, and each batch costs one
//! executor run over the stacked rows. Kernel threading is pinned to 1
//! on both sides, so any win is pure batching: fewer per-run
//! fixed costs (executor dispatch, one im2col+GEMM per conv *group*
//! instead of per image, bigger GEMMs running closer to peak).
//!
//! Results go to `BENCH_serve.json` at the workspace root:
//! requests/second for both sides, the speedup, and the server's own
//! latency percentiles and batch-size histogram.

use fx_core::{symbolic_trace, Executor, GraphModule, Value};
use fx_models::resnet50;
use fx_serve::Server;
use fx_tensor::rng::{SeedableRng, StdRng};
use fx_tensor::{set_num_threads, Tensor};
use std::io::Write;
use std::time::{Duration, Instant};

const REQUESTS: usize = 240;
const CLIENTS: usize = 4;
const MAX_BATCH: usize = 8;

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// One `Executor` run per request at batch 1: the no-batching server.
fn run_baseline(gm: &GraphModule, requests: &[Tensor]) -> (f64, Vec<f64>) {
    let start = Instant::now();
    let mut lat = Vec::with_capacity(requests.len());
    for x in requests {
        let t0 = Instant::now();
        Executor::new(gm)
            .with_threads(1)
            .run(&[Value::Tensor(x.clone())])
            .expect("baseline run");
        lat.push(t0.elapsed().as_secs_f64());
    }
    let wall = start.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.total_cmp(b));
    (requests.len() as f64 / wall, lat)
}

/// The same requests through the dynamic-batching server, from
/// `CLIENTS` concurrent client threads.
fn run_served(gm: &GraphModule, requests: &[Tensor]) -> (f64, fx_serve::ServeStats) {
    let server = Server::builder(gm.clone(), &[vec![1, 3, 32, 32]])
        .max_batch_size(MAX_BATCH)
        .max_batch_delay(Duration::from_millis(2))
        .queue_depth(REQUESTS + CLIENTS)
        .build()
        .expect("resnet50 is batch-polymorphic");

    let start = Instant::now();
    std::thread::scope(|s| {
        for chunk in requests.chunks(requests.len().div_ceil(CLIENTS)) {
            let handle = server.handle();
            s.spawn(move || {
                for x in chunk {
                    handle.infer(vec![x.clone()]).expect("served run");
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let stats = server.shutdown();
    assert_eq!(stats.requests_ok, requests.len() as u64);
    (requests.len() as f64 / wall, stats)
}

fn main() {
    let mut rng = StdRng::seed_from_u64(50);
    let model = resnet50(3, 10, &mut rng);
    let gm = symbolic_trace(&model).expect("resnet50 traces");
    let mut xrng = StdRng::seed_from_u64(1);
    let requests: Vec<Tensor> = (0..REQUESTS)
        .map(|_| Tensor::randn(&[1, 3, 32, 32], &mut xrng))
        .collect();

    // Both sides get exactly one kernel thread; the contest is purely
    // request batching, not intra-op parallelism.
    set_num_threads(1);
    let kernel_threads = fx_tensor::num_threads();

    // Warm the plan cache so neither side pays compilation.
    Executor::new(&gm)
        .run(&[Value::Tensor(requests[0].clone())])
        .expect("warmup");

    println!("serving bench: {REQUESTS} requests, {CLIENTS} clients, max batch {MAX_BATCH} rows");
    let (base_rps, base_lat) = run_baseline(&gm, &requests);
    println!("  baseline (batch=1): {base_rps:.2} req/s");
    let (served_rps, stats) = run_served(&gm, &requests);
    println!("  served  (batched):  {served_rps:.2} req/s");
    println!("{stats}");
    set_num_threads(0);

    let speedup = served_rps / base_rps;
    println!("  speedup: {speedup:.3}x");

    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str("  \"model\": \"resnet50(3,10) @ [1,3,32,32]\",\n");
    out.push_str(&format!(
        "  \"requests\": {REQUESTS}, \"clients\": {CLIENTS}, \"max_batch_rows\": {MAX_BATCH},\n"
    ));
    out.push_str(&format!("  \"kernel_threads\": {kernel_threads},\n"));
    out.push_str(&format!(
        "  \"hardware_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!(
        "  \"baseline\": {{ \"throughput_rps\": {:.3}, \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6} }},\n",
        base_rps,
        quantile(&base_lat, 0.50),
        quantile(&base_lat, 0.99)
    ));
    out.push_str(&format!(
        "  \"served\": {{ \"throughput_rps\": {:.3}, \"p50_latency_s\": {:.6}, \"p99_latency_s\": {:.6}, \
\"mean_batch_rows\": {:.3}, \"batches\": {}, \"plan_cache_hits\": {}, \"queue_high_water\": {} }},\n",
        served_rps,
        stats.p50_latency_s,
        stats.p99_latency_s,
        stats.mean_batch_rows,
        stats.batches,
        stats.plan_cache_hits,
        stats.queue_high_water
    ));
    out.push_str(&format!(
        "  \"pool\": {{ \"fresh_allocs\": {}, \"hits\": {}, \"hit_rate\": {:.4}, \"peak_bytes\": {} }},\n",
        stats.pool_fresh_allocs, stats.pool_hits, stats.pool_hit_rate, stats.pool_peak_bytes
    ));
    out.push_str(&format!("  \"speedup_batched_vs_serial\": {speedup:.3}\n"));
    out.push_str("}\n");

    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_serve.json");
    f.write_all(out.as_bytes()).expect("write BENCH_serve.json");
    println!("wrote {path}");
}
