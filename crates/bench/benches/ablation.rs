//! Ablation bench for the backend engine's design choices (DESIGN.md
//! §5): how much of the TensorRT-style win comes from each mechanism —
//! conv-BN folding, activation-epilogue fusion, unary-chain fusion, and
//! liveness register planning.

use fx_bench::criterion::{criterion_group, criterion_main, Criterion};
use fx_backend::{compile_with, CompileOptions};
use fx_core::symbolic_trace;
use fx_models::resnet18;
use fx_tensor::Tensor;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

fn ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let model = resnet18(3, 1000, &mut rng);
    let gm = symbolic_trace(&model).unwrap();
    let x = Tensor::randn(&[1, 3, 64, 64], &mut rng);

    let variants: [(&str, CompileOptions); 5] = [
        ("full", CompileOptions::default()),
        (
            "no_conv_bn_fold",
            CompileOptions {
                fuse_conv_bn: false,
                ..Default::default()
            },
        ),
        (
            "no_epilogue_fusion",
            CompileOptions {
                fuse_epilogues: false,
                ..Default::default()
            },
        ),
        (
            "no_unary_chains",
            CompileOptions {
                fuse_unary_chains: false,
                ..Default::default()
            },
        ),
        (
            "no_register_planning",
            CompileOptions {
                plan_registers: false,
                ..Default::default()
            },
        ),
    ];

    let mut group = c.benchmark_group("engine_ablation_resnet18");
    group.sample_size(10);
    for (name, opts) in variants {
        let engine = compile_with(&gm, opts).unwrap();
        println!(
            "[ablation] {name}: {} instructions, {} registers",
            engine.instruction_count(),
            engine.register_count()
        );
        group.bench_function(name, |b| b.iter(|| engine.run(std::slice::from_ref(&x)).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
