//! Sequential vs. parallel execution of the plan-cached [`Executor`] on
//! a ResNet-50 forward pass, sweeping worker counts. The 1-thread
//! executor *is* the sequential baseline: it runs the plan's
//! levelization in submission order on the caller's thread, which is
//! exactly what the deprecated `Interpreter` shim did, minus the
//! per-run topological re-walk.
//!
//! Kernel-level threading is pinned to 1 (`set_num_threads(1)`) so the
//! sweep isolates *graph-level* parallelism — the wavefront scheduling
//! the executor's `ExecPlan` provides. Besides the printed criterion
//! lines, the measured numbers are written to `BENCH_executor.json` at
//! the workspace root so `scripts/verify.sh` (and CI) can archive them.
//! On a single-core host the parallel configurations are expected to
//! only match the sequential path; the JSON records whatever this
//! machine actually measured, plus the hardware parallelism it saw.
//!
//! The JSON also carries an `allocator` section: steady-state heap
//! allocations per run with memory planning off vs. on, the buffer-pool
//! hit rate, and the pool's peak parked bytes — the numbers behind the
//! static memory planner's "(near-)zero allocation" claim.
//!
//! Finally, an `autotune` section records, for each evaluation model,
//! the profile-guided `ExecChoice` that `fx_backend::autotune` picked
//! against the default configuration — both autotune's own measurements
//! (where chosen ≤ default is guaranteed by the hysteresis rule) and an
//! independent re-measurement, which this bench asserts stays within a
//! 15% noise margin of the default.

use fx_backend::{autotune, prepare_choice};
use fx_bench::criterion::{criterion_group, criterion_main, Criterion};
use fx_core::{symbolic_trace, ExecConfig, Executor, ExecutorBackend, ExecutionBackend,
    GraphModule, Value};
use fx_models::{resnet50, DeepRecommender, LearningToPaintActor};
use fx_passes::DeviceSpec;
use fx_tensor::rng::{SeedableRng, StdRng};
use fx_tensor::{num_threads, ops, pool, set_num_threads, Tensor};
use std::io::Write;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

struct Row {
    name: String,
    threads: usize,
    kernel_threads: usize,
    mean_s: f64,
    stdev_s: f64,
}

struct AutoRow {
    model: String,
    backend: String,
    config: String,
    /// Autotune's own min-of-trials timings (chosen ≤ default by
    /// construction: a challenger must clear the hysteresis bar).
    default_s: f64,
    chosen_s: f64,
    predicted_s: Option<f64>,
    /// Independent re-measurement of both configurations.
    remeasured_default_s: f64,
    remeasured_chosen_s: f64,
}

struct AllocStats {
    fresh_per_run: f64,
    hits_per_run: f64,
    hit_rate: f64,
    pool_peak_bytes: u64,
}

struct KernelRow {
    name: String,
    flops: u64,
    mean_s: f64,
    gflops: f64,
    fraction_of_peak: f64,
    int8: bool,
}

/// Raw kernel throughput vs. the host roofline: GEMM and convolution
/// GFLOP/s measured directly (no graph machinery), divided by the
/// single-core peak of [`DeviceSpec::host_cpu_single_core`] — which
/// follows whichever engine (AVX2 microkernel or portable scalar) the
/// kernel library selected at startup. Int8 rows count multiply-adds
/// the same way (2·m·k·n "flops") but report `fraction_of_peak`
/// against the **int8 roofline** `peak_flops × int8_speedup`.
fn kernel_rows(device: &DeviceSpec) -> Vec<KernelRow> {
    let mut rng = StdRng::seed_from_u64(90);
    let mut rows = Vec::new();
    // Measure kernels the way a model runs them: with the buffer pool
    // active, so scratch (im2col panels, i32 accumulators) is reused
    // across calls instead of hitting the allocator every iteration.
    let _pool = pool::activate();
    let mut push = |name: String, flops: u64, int8: bool, mut f: Box<dyn FnMut()>| {
        let stats = fx_bench::time_trials(8, 2, || f());
        let gflops = flops as f64 / stats.mean / 1e9;
        let peak = if int8 {
            device.peak_flops * device.int8_speedup
        } else {
            device.peak_flops
        };
        rows.push(KernelRow {
            name,
            flops,
            mean_s: stats.mean,
            gflops,
            fraction_of_peak: gflops * 1e9 / peak,
            int8,
        });
    };

    // Square-ish GEMMs (nn) plus a Linear-shaped (nt) case.
    for &(m, k, n) in &[(256usize, 256usize, 256usize), (512, 512, 512), (384, 1152, 128)] {
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
        push(
            format!("gemm_nn {m}x{k}x{n}"),
            (2 * m * k * n) as u64,
            false,
            Box::new(move || {
                pool::recycle_tensor(ops::matmul(&a, &b).expect("gemm bench"));
            }),
        );
    }
    let x = Tensor::rand_uniform(&[64, 512], -1.0, 1.0, &mut rng);
    let w = Tensor::rand_uniform(&[512, 512], -1.0, 1.0, &mut rng);
    let bias = Tensor::rand_uniform(&[512], -1.0, 1.0, &mut rng);
    push(
        "linear+relu 64x512x512".to_string(),
        (2 * 64 * 512 * 512) as u64,
        false,
        Box::new(move || {
            pool::recycle_tensor(ops::linear_act(&x, &w, Some(&bias), true).expect("linear bench"));
        }),
    );

    // Int8 GEMM through the quantized linear kernel, shape-matched to
    // the 256³ f32 `gemm_nn` row so the two throughputs are directly
    // comparable (the epilogue — zero-point correction + requantize —
    // is included in the measured time, as it would be in a model).
    {
        use fx_tensor::quant;
        let (m, k, n) = (256usize, 256usize, 256usize);
        let x = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform(&[n, k], -0.5, 0.5, &mut rng);
        let (xs, xzp) = quant::choose_qparams(-1.0, 1.0);
        let xq = quant::quantize_per_tensor(&x, xs, xzp).expect("quantize activations");
        let wq = quant::quantize_per_channel(&w, 0).expect("quantize weights");
        push(
            format!("gemm_i8 {m}x{k}x{n} (quantized_linear)"),
            (2 * m * k * n) as u64,
            true,
            Box::new(move || {
                let out = quant::quantized_linear(&xq, &wq, None, 0.02, 0, false)
                    .expect("i8 gemm bench");
                pool::recycle_tensor(out);
            }),
        );
    }

    // ResNet-shaped convs: a 3x3 mid-stage block and a 1x1 pointwise.
    let x3 = Tensor::rand_uniform(&[1, 64, 56, 56], -1.0, 1.0, &mut rng);
    let w3 = Tensor::rand_uniform(&[64, 64, 3, 3], -0.5, 0.5, &mut rng);
    let conv3_flops = 2u64 * 64 * 56 * 56 * 64 * 9;
    push(
        "conv3x3 64->64 @56x56".to_string(),
        conv3_flops,
        false,
        Box::new(move || {
            pool::recycle_tensor(
                ops::conv2d(&x3, &w3, None, (1, 1), (1, 1), (1, 1), 1).expect("conv bench"),
            );
        }),
    );
    let x1 = Tensor::rand_uniform(&[1, 256, 28, 28], -1.0, 1.0, &mut rng);
    let w1 = Tensor::rand_uniform(&[128, 256, 1, 1], -0.5, 0.5, &mut rng);
    let conv1_flops = 2u64 * 128 * 28 * 28 * 256;
    push(
        "conv1x1 256->128 @28x28".to_string(),
        conv1_flops,
        false,
        Box::new(move || {
            pool::recycle_tensor(ops::conv2d_pointwise(&x1, &w1, None).expect("pointwise bench"));
        }),
    );

    // The int8 microkernel only pays off when it actually runs: with
    // AVX2 selected, demand the i8 GEMM clear 1.5× the matching f32
    // row's GFLOP/s (int8 peak is 2× — §acceptance criteria).
    if fx_tensor::simd_enabled() {
        let f32_row = rows
            .iter()
            .find(|r| r.name.starts_with("gemm_nn 256x256x256"))
            .expect("f32 gemm row present");
        let i8_row = rows
            .iter()
            .find(|r| r.int8)
            .expect("i8 gemm row present");
        assert!(
            i8_row.gflops >= 1.5 * f32_row.gflops,
            "i8 GEMM too slow: {:.2} GFLOP/s vs f32 {:.2} GFLOP/s (need 1.5x)",
            i8_row.gflops,
            f32_row.gflops
        );
    }
    rows
}

/// Steady-state allocator traffic per run: warm the pool, then average
/// the global counters over a fixed number of runs.
fn measure_allocs(gm: &GraphModule, x: &[Value], planning: bool) -> AllocStats {
    let mut ex = Executor::new(gm).with_memory_planning(planning);
    for _ in 0..2 {
        ex.run(x).expect("allocator warm-up run");
    }
    const RUNS: u64 = 10;
    let base = pool::stats();
    for _ in 0..RUNS {
        ex.run(x).expect("allocator measured run");
    }
    let d = pool::stats().since(&base);
    AllocStats {
        fresh_per_run: d.fresh_allocs as f64 / RUNS as f64,
        hits_per_run: d.pool_hits as f64 / RUNS as f64,
        hit_rate: d.hit_rate(),
        pool_peak_bytes: d.in_pool_peak_bytes,
    }
}

/// Autotune every evaluation model and time the chosen configuration
/// against the default through the same `PreparedModel` interface.
fn autotune_rows() -> Vec<AutoRow> {
    let mut rng = StdRng::seed_from_u64(50);
    let resnet = symbolic_trace(&resnet50(3, 10, &mut rng)).expect("resnet50 traces");
    let mut rng = StdRng::seed_from_u64(52);
    let recommender =
        symbolic_trace(&DeepRecommender::new(64, &mut rng)).expect("recommender traces");
    let mut rng = StdRng::seed_from_u64(51);
    let actor = symbolic_trace(&LearningToPaintActor::new(&mut rng)).expect("actor traces");

    let mut xrng = StdRng::seed_from_u64(2);
    let cases = [
        ("resnet50(3,10) @ [1,3,32,32]", &resnet, vec![1usize, 3, 32, 32]),
        ("deep_recommender(64) @ [2,64]", &recommender, vec![2, 64]),
        ("learning_to_paint @ [1,9,32,32]", &actor, vec![1, 9, 32, 32]),
    ];
    let mut rows = Vec::new();
    for (model, gm, shape) in cases {
        let x = vec![Value::Tensor(Tensor::randn(&shape, &mut xrng))];
        let choice = autotune(gm, &x).expect("autotune");
        assert_eq!(
            gm.exec_choice().as_ref(),
            Some(&choice),
            "{model}: autotune must cache its choice on the module"
        );
        assert!(
            choice.measured_seconds <= choice.default_seconds,
            "{model}: {choice}"
        );
        let default = ExecutorBackend
            .prepare_with(gm, ExecConfig::from_env())
            .expect("default prepares");
        let chosen = prepare_choice(gm, &choice).expect("choice prepares");
        let d = fx_bench::time_trials(10, 1, || {
            default.run(&x).expect("default run");
        });
        let ch = fx_bench::time_trials(10, 1, || {
            chosen.run(&x).expect("chosen run");
        });
        // 10-trial means on a shared (often single-core) host routinely
        // swing 15-20%; the gate only needs to catch autotune picking a
        // configuration that is *systematically* slower, so give one
        // stdev of each side's headroom on top of the noise margin.
        assert!(
            ch.mean - ch.stdev <= (d.mean + d.stdev) * 1.25,
            "{model}: autotuned config re-measured slower than default \
             beyond noise ({:.6}s vs {:.6}s; {choice})",
            ch.mean,
            d.mean
        );
        rows.push(AutoRow {
            model: model.to_string(),
            backend: choice.backend.clone(),
            config: choice.config.to_string(),
            default_s: choice.default_seconds,
            chosen_s: choice.measured_seconds,
            predicted_s: choice.predicted_seconds,
            remeasured_default_s: d.mean,
            remeasured_chosen_s: ch.mean,
        });
    }
    rows
}

fn bench_interp_vs_executor(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(50);
    let model = resnet50(3, 10, &mut rng);
    let gm = symbolic_trace(&model).expect("resnet50 traces");
    let mut xrng = StdRng::seed_from_u64(1);
    let x = vec![Value::Tensor(Tensor::randn(&[1, 3, 32, 32], &mut xrng))];

    // Isolate graph-level parallelism from kernel-level parallelism.
    set_num_threads(1);

    // Warm the plan cache once and check the observability contract:
    // every subsequent run below must be a cache hit.
    let (_, first) = Executor::new(&gm).run_profiled(&x).expect("first run");
    assert!(!first.plan_cache_hit, "first run compiles the plan");
    let (_, second) = Executor::new(&gm).run_profiled(&x).expect("second run");
    assert!(second.plan_cache_hit, "plan must be cached across runs");
    assert_eq!(second.plan_compiles, 1, "no recompile on a hit");

    let alloc_off = measure_allocs(&gm, &x, false);
    let alloc_on = measure_allocs(&gm, &x, true);

    let mut rows: Vec<Row> = Vec::new();
    let mut group = c.benchmark_group("resnet50_forward");
    group.sample_size(10);

    // On a single-core host the t2/t4/t8 configurations cannot beat t1
    // — they only time-slice one core and their `speedup_vs_t1 < 1`
    // rows read as regressions. Skip them and record why in the JSON.
    let hardware_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let sweep: &[usize] = if hardware_parallelism == 1 {
        &THREAD_SWEEP[..1]
    } else {
        &THREAD_SWEEP
    };

    for &threads in sweep {
        let name = format!("executor_t{threads}");
        group.bench_function(&name, |b| {
            b.iter(|| Executor::new(&gm).with_threads(threads).run(&x).unwrap());
        });
        // Re-measure outside the printed run for the JSON record (the
        // shim does not expose its samples back to the caller).
        let stats = fx_bench::time_trials(10, 1, || {
            Executor::new(&gm).with_threads(threads).run(&x).unwrap();
        });
        rows.push(Row {
            name,
            threads,
            kernel_threads: num_threads(),
            mean_s: stats.mean,
            stdev_s: stats.stdev,
        });
    }
    group.finish();

    // Autotune under the same pinned kernel-thread conditions, so its
    // measurements describe the same machine state as the sweep above.
    let auto_rows = autotune_rows();

    // Kernel roofline rows under the same pinned conditions.
    let device = DeviceSpec::host_cpu_single_core();
    let kernel_rows = kernel_rows(&device);
    set_num_threads(0);

    write_json(&rows, &auto_rows, &kernel_rows, &device, &second, &alloc_off, &alloc_on)
        .expect("write BENCH_executor.json");
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    rows: &[Row],
    auto_rows: &[AutoRow],
    kernel_rows: &[KernelRow],
    device: &DeviceSpec,
    profile: &fx_core::RunProfile,
    alloc_off: &AllocStats,
    alloc_on: &AllocStats,
) -> std::io::Result<()> {
    let seq = rows
        .iter()
        .find(|r| r.threads == 1)
        .map(|r| r.mean_s)
        .unwrap_or(0.0);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"interp_vs_executor\",\n");
    out.push_str("  \"model\": \"resnet50(3,10) @ [1,3,32,32]\",\n");
    out.push_str("  \"kernel_threads\": 1,\n");
    let hardware_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!(
        "  \"hardware_parallelism\": {hardware_parallelism},\n"
    ));
    if hardware_parallelism == 1 {
        out.push_str(
            "  \"thread_sweep_note\": \"single-core host: multi-thread rows skipped \
             (time-slicing one core cannot exceed t1)\",\n",
        );
    }
    out.push_str(&format!(
        "  \"plan_cache\": {{ \"hit\": {}, \"compiles\": {}, \"hits\": {} }},\n",
        profile.plan_cache_hit, profile.plan_compiles, profile.plan_hits
    ));
    let reduction = if alloc_on.fresh_per_run > 0.0 {
        alloc_off.fresh_per_run / alloc_on.fresh_per_run
    } else {
        f64::INFINITY
    };
    out.push_str(&format!(
        "  \"allocator\": {{\n    \"memory_planning_off\": {{ \"fresh_allocs_per_run\": {:.1}, \"pool_hits_per_run\": {:.1} }},\n    \"memory_planning_on\": {{ \"fresh_allocs_per_run\": {:.1}, \"pool_hits_per_run\": {:.1}, \"hit_rate\": {:.4}, \"pool_peak_bytes\": {} }},\n    \"alloc_reduction_x\": {}\n  }},\n",
        alloc_off.fresh_per_run,
        alloc_off.hits_per_run,
        alloc_on.fresh_per_run,
        alloc_on.hits_per_run,
        alloc_on.hit_rate,
        alloc_on.pool_peak_bytes,
        if reduction.is_finite() {
            format!("{reduction:.1}")
        } else {
            "\"inf\"".to_string()
        }
    ));
    out.push_str(&format!(
        "  \"kernels\": {{\n    \"simd\": {},\n    \"roofline_device\": \"{}\",\n    \"roofline_peak_gflops\": {:.1},\n    \"int8_roofline_peak_gflops\": {:.1},\n    \"rows\": [\n",
        fx_tensor::simd_enabled(),
        device.name,
        device.peak_flops / 1e9,
        device.peak_flops * device.int8_speedup / 1e9
    ));
    for (i, r) in kernel_rows.iter().enumerate() {
        out.push_str(&format!(
            "      {{ \"name\": \"{}\", \"flops\": {}, \"int8\": {}, \"mean_s\": {:.6}, \"gflops\": {:.2}, \"fraction_of_peak\": {:.3} }}{}\n",
            r.name,
            r.flops,
            r.int8,
            r.mean_s,
            r.gflops,
            r.fraction_of_peak,
            if i + 1 < kernel_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n  },\n");
    out.push_str("  \"autotune\": [\n");
    for (i, r) in auto_rows.iter().enumerate() {
        let ratio = if r.remeasured_default_s > 0.0 {
            r.remeasured_chosen_s / r.remeasured_default_s
        } else {
            0.0
        };
        out.push_str(&format!(
            "    {{ \"model\": \"{}\", \"backend\": \"{}\", \"config\": \"{}\", \"default_s\": {:.6}, \"chosen_s\": {:.6}, \"predicted_s\": {}, \"remeasured_default_s\": {:.6}, \"remeasured_chosen_s\": {:.6}, \"remeasured_ratio\": {:.3} }}{}\n",
            r.model,
            r.backend,
            r.config,
            r.default_s,
            r.chosen_s,
            r.predicted_s
                .map_or("null".to_string(), |p| format!("{p:.6}")),
            r.remeasured_default_s,
            r.remeasured_chosen_s,
            ratio,
            if i + 1 < auto_rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = if r.mean_s > 0.0 { seq / r.mean_s } else { 0.0 };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"threads\": {}, \"kernel_threads\": {}, \"mean_s\": {:.6}, \"stdev_s\": {:.6}, \"speedup_vs_t1\": {:.3} }}{}\n",
            r.name,
            r.threads,
            r.kernel_threads,
            r.mean_s,
            r.stdev_s,
            speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");

    // crates/bench -> workspace root.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_executor.json");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())?;
    println!("wrote {path}");
    Ok(())
}

criterion_group!(benches, bench_interp_vs_executor);
criterion_main!(benches);
