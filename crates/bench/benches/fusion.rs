//! Criterion bench for E3 (§6.2.2 / Figure 7 / Appendix C): conv–BN
//! fusion, fused vs unfused, threaded vs unthreaded, on ResNet-18.
//! `repro-fusion` runs the full-scale ResNet50 version with the
//! simulated-GPU row.

use fx_bench::criterion::{criterion_group, criterion_main, Criterion};
use fx_core::{symbolic_trace, Value};
use fx_models::resnet18;
use fx_passes::fuse_conv_bn;
use fx_tensor::{set_num_threads, Tensor};
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

fn fusion(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let model = resnet18(3, 1000, &mut rng);
    let unfused = symbolic_trace(&model).unwrap();
    let mut fused = unfused.clone();
    let n = fuse_conv_bn(&mut fused).unwrap();
    println!(
        "[fusion] fused {n} conv-bn pairs; graph {} -> {} nodes",
        unfused.graph().len(),
        fused.graph().len()
    );
    let x = Value::Tensor(Tensor::randn(&[1, 3, 64, 64], &mut rng));

    let mut group = c.benchmark_group("conv_bn_fusion_resnet18");
    group.sample_size(10);
    for (threads, label) in [(0usize, "threaded"), (1, "unthreaded")] {
        group.bench_function(format!("unfused_{label}"), |b| {
            set_num_threads(threads);
            b.iter(|| unfused.run(std::slice::from_ref(&x)).unwrap());
            set_num_threads(0);
        });
        group.bench_function(format!("fused_{label}"), |b| {
            set_num_threads(threads);
            b.iter(|| fused.run(std::slice::from_ref(&x)).unwrap());
            set_num_threads(0);
        });
    }
    group.finish();
}

criterion_group!(benches, fusion);
criterion_main!(benches);
