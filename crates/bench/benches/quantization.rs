//! Criterion bench for E2 (§6.2.1 / Figure 6 / Appendix B): f32 vs int8
//! DeepRecommender inference across batch sizes. Reduced item count to
//! keep `cargo bench` quick; `repro-quant` runs the full sweep.

use fx_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fx_core::{symbolic_trace, Value};
use fx_models::DeepRecommender;
use fx_quant::{quantize_ptq, QConfig};
use fx_tensor::Tensor;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

fn quantization(c: &mut Criterion) {
    let n_items = 2048;
    let mut rng = StdRng::seed_from_u64(0);
    let model = DeepRecommender::new(n_items, &mut rng);
    let gm = symbolic_trace(&model).unwrap();
    let calibration: Vec<Vec<Value>> = (0..4)
        .map(|_| {
            vec![Value::Tensor(Tensor::rand_uniform(
                &[8, n_items],
                0.0,
                5.0,
                &mut rng,
            ))]
        })
        .collect();
    let qgm = quantize_ptq(&gm, &calibration, &QConfig::default()).unwrap();

    let mut group = c.benchmark_group("quantization_deeprecommender");
    group.sample_size(10);
    for &batch in &[1usize, 16, 64] {
        let x = Value::Tensor(Tensor::rand_uniform(&[batch, n_items], 0.0, 5.0, &mut rng));
        group.bench_with_input(BenchmarkId::new("f32", batch), &x, |b, x| {
            b.iter(|| gm.run(std::slice::from_ref(x)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("int8", batch), &x, |b, x| {
            b.iter(|| qgm.run(std::slice::from_ref(x)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, quantization);
criterion_main!(benches);
