//! Criterion bench for E1 (§6.1 / Figure 5): capture/compile latency of
//! the four representations on ResNet-18, with op counts printed once.
//! The full-scale ResNet50 counts come from `repro-ir`.

use fx_bench::criterion::{criterion_group, criterion_main, Criterion};
use fx_core::{symbolic_trace, symbolic_trace_with};
use fx_jit::{script_compile, trace_lower, NoLeafTracer};
use fx_models::resnet18;
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;
use std::sync::Arc;

fn ir_complexity(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let model = resnet18(3, 1000, &mut rng);
    let fx_gm = symbolic_trace(&model).unwrap();

    // Print the counts once so `cargo bench` output records them.
    let fx_fn = symbolic_trace_with(&model, Arc::new(NoLeafTracer)).unwrap();
    println!(
        "[ir_complexity] ResNet18 op counts: fx(module)={} fx(functional)={} jit.trace={} jit.script={}",
        fx_gm.graph().len(),
        fx_fn.graph().len(),
        trace_lower(&fx_gm).unwrap().op_count(),
        script_compile(&model).unwrap().op_count()
    );

    let mut group = c.benchmark_group("ir_complexity");
    group.sample_size(20);
    group.bench_function("symbolic_trace_module_level", |b| {
        b.iter(|| symbolic_trace(&model).unwrap())
    });
    group.bench_function("symbolic_trace_functional_level", |b| {
        b.iter(|| symbolic_trace_with(&model, Arc::new(NoLeafTracer)).unwrap())
    });
    group.bench_function("jit_trace_lowering", |b| {
        b.iter(|| trace_lower(&fx_gm).unwrap())
    });
    group.bench_function("jit_script_compilation", |b| {
        b.iter(|| script_compile(&model).unwrap())
    });
    group.finish();
}

criterion_group!(benches, ir_complexity);
criterion_main!(benches);
