//! `torch.jit.trace`-style lowering: expand a (module-level) fx graph
//! into the rich IR the way an example-input tracer records programs.
//!
//! The structural differences from fx that the paper's §6.1 counts come
//! from are all reproduced:
//!
//! * **no immediates** — every scalar becomes a `prim::Constant` node
//!   (deduplicated graph-globally, as jit.trace does), every list a
//!   `prim::ListConstruct`;
//! * **explicit state access** — every module call expands into a
//!   `prim::GetAttr` chain walking the hierarchy plus `prim::GetAttr`s
//!   for each parameter;
//! * **low-level ops** — `call_module(Conv2d)` becomes the full
//!   `aten::conv2d` call with stride/padding/dilation lists, batch norm
//!   becomes `aten::batch_norm` with all five tensors and four scalars.

use crate::jir::{JGraph, JValue};
use fx_core::{Arg, Error, GraphModule, NodeId, Opcode, Result};
use fx_nn::{AdaptiveAvgPool2d, AvgPool2d, Conv2d, Dropout, Flatten, MaxPool2d};
use std::collections::HashMap;

struct Lowering<'a> {
    gm: &'a GraphModule,
    g: JGraph,
    self_val: JValue,
    /// Deduplicated constants, keyed by their printed payload.
    consts: HashMap<String, JValue>,
    /// Cached `prim::GetAttr` chains, keyed by dotted path.
    attr_chains: HashMap<String, JValue>,
    env: HashMap<NodeId, JValue>,
}

impl<'a> Lowering<'a> {
    fn constant(&mut self, payload: &str) -> JValue {
        if let Some(&v) = self.consts.get(payload) {
            return v;
        }
        let v = self
            .g
            .emit("prim::Constant", vec![], &format!("value={payload}"));
        self.consts.insert(payload.to_string(), v);
        v
    }

    fn int_const(&mut self, v: i64) -> JValue {
        self.constant(&v.to_string())
    }

    /// GetAttr chain `self.layer1.0.conv1`, one node per new segment.
    fn attr_chain(&mut self, path: &str) -> JValue {
        if let Some(&v) = self.attr_chains.get(path) {
            return v;
        }
        let (base, name) = match path.rsplit_once('.') {
            Some((prefix, name)) => (self.attr_chain(prefix), name),
            None => (self.self_val, path),
        };
        let v = self
            .g
            .emit("prim::GetAttr", vec![base], &format!("name=\"{name}\""));
        self.attr_chains.insert(path.to_string(), v);
        v
    }

    fn pair_list(&mut self, p: (usize, usize)) -> JValue {
        let a = self.int_const(p.0 as i64);
        let b = self.int_const(p.1 as i64);
        self.g.emit("prim::ListConstruct", vec![a, b], "")
    }

    fn node_value(&self, id: NodeId) -> Result<JValue> {
        self.env.get(&id).copied().ok_or_else(|| {
            Error::Graph(format!("trace lowering: %{} has no value", id.index()))
        })
    }

    fn arg_value(&mut self, arg: &Arg) -> Result<JValue> {
        Ok(match arg {
            Arg::Node(id) => self.node_value(*id)?,
            Arg::Int(v) => self.int_const(*v),
            Arg::Float(v) => self.constant(&format!("{v:?}")),
            Arg::Bool(v) => self.constant(if *v { "True" } else { "False" }),
            Arg::Str(s) => self.constant(&format!("{s:?}")),
            Arg::None => self.constant("None"),
            Arg::List(items) | Arg::Tuple(items) => {
                let vals = items
                    .iter()
                    .map(|a| self.arg_value(a))
                    .collect::<Result<Vec<_>>>()?;
                let kind = if matches!(arg, Arg::List(_)) {
                    "prim::ListConstruct"
                } else {
                    "prim::TupleConstruct"
                };
                self.g.emit(kind, vals, "")
            }
        })
    }
}

/// Lower a module-level fx [`GraphModule`] into the trace-style rich IR.
pub fn trace_lower(gm: &GraphModule) -> Result<JGraph> {
    let mut g = JGraph::new();
    let self_val = g.add_input();
    let mut low = Lowering {
        gm,
        g,
        self_val,
        consts: HashMap::new(),
        attr_chains: HashMap::new(),
        env: HashMap::new(),
    };
    for id in gm.graph().node_ids() {
        let node = gm.graph().node(id).clone();
        match node.op() {
            Opcode::Placeholder => {
                let v = low.g.add_input();
                low.env.insert(id, v);
            }
            Opcode::GetAttr => {
                let v = low.attr_chain(node.target());
                low.env.insert(id, v);
            }
            Opcode::Output => {}
            Opcode::CallModule => {
                let v = lower_module_call(&mut low, &node)?;
                low.env.insert(id, v);
            }
            Opcode::CallFunction | Opcode::CallMethod => {
                let v = lower_call(&mut low, &node)?;
                low.env.insert(id, v);
            }
        }
    }
    Ok(low.g)
}

fn lower_module_call(low: &mut Lowering<'_>, node: &fx_core::Node) -> Result<JValue> {
    let module = low
        .gm
        .get_module(node.target())
        .cloned()
        .ok_or_else(|| Error::Module(format!("missing submodule `{}`", node.target())))?;
    let x = node
        .args()
        .first()
        .and_then(Arg::as_node)
        .map(|id| low.node_value(id))
        .transpose()?
        .unwrap_or(low.self_val);
    let any = module.as_any();
    Ok(if let Some(conv) = any.downcast_ref::<Conv2d>() {
        let m = low.attr_chain(node.target());
        let w = low
            .g
            .emit("prim::GetAttr", vec![m], "name=\"weight\"");
        let b = if conv.bias().is_some() {
            low.g.emit("prim::GetAttr", vec![m], "name=\"bias\"")
        } else {
            low.constant("None")
        };
        let (stride, padding, dilation, groups) = conv.geometry();
        let s = low.pair_list(stride);
        let p = low.pair_list(padding);
        let d = low.pair_list(dilation);
        let grp = low.int_const(groups as i64);
        low.g
            .emit("aten::conv2d", vec![x, w, b, s, p, d, grp], "")
    } else if module.type_name() == "BatchNorm2d" {
        let m = low.attr_chain(node.target());
        let params: Vec<JValue> = ["weight", "bias", "running_mean", "running_var"]
            .iter()
            .map(|name| {
                low.g
                    .emit("prim::GetAttr", vec![m], &format!("name=\"{name}\""))
            })
            .collect();
        let training = low.constant("False");
        let momentum = low.constant("0.1");
        let eps = low.constant("1e-05");
        let cudnn = low.constant("True");
        let mut inputs = vec![x];
        inputs.extend(params);
        inputs.extend([training, momentum, eps, cudnn]);
        low.g.emit("aten::batch_norm", inputs, "")
    } else if module.type_name() == "Linear" {
        let m = low.attr_chain(node.target());
        let w = low.g.emit("prim::GetAttr", vec![m], "name=\"weight\"");
        let b = low.g.emit("prim::GetAttr", vec![m], "name=\"bias\"");
        low.g.emit("aten::linear", vec![x, w, b], "")
    } else if let Some(p) = any.downcast_ref::<MaxPool2d>() {
        let k = low.pair_list(p.kernel_size);
        let s = low.pair_list(p.stride);
        let pad = low.pair_list(p.padding);
        let d = low.pair_list((1, 1));
        let ceil = low.constant("False");
        low.g
            .emit("aten::max_pool2d", vec![x, k, s, pad, d, ceil], "")
    } else if let Some(p) = any.downcast_ref::<AvgPool2d>() {
        let k = low.pair_list(p.kernel_size);
        let s = low.pair_list(p.stride);
        let pad = low.pair_list(p.padding);
        let ceil = low.constant("False");
        let include = low.constant("True");
        low.g
            .emit("aten::avg_pool2d", vec![x, k, s, pad, ceil, include], "")
    } else if let Some(p) = any.downcast_ref::<AdaptiveAvgPool2d>() {
        let o = low.pair_list(p.output_size);
        low.g.emit("aten::adaptive_avg_pool2d", vec![x, o], "")
    } else if let Some(f) = any.downcast_ref::<Flatten>() {
        let s = low.int_const(f.start_dim);
        let e = low.int_const(f.end_dim);
        low.g.emit("aten::flatten", vec![x, s, e], "")
    } else if let Some(d) = any.downcast_ref::<Dropout>() {
        let p = low.constant(&format!("{:?}", d.p));
        let train = low.constant("False");
        low.g.emit("aten::dropout", vec![x, p, train], "")
    } else {
        // Activations and anything else leaf-like: a single aten op.
        let name = match module.type_name() {
            "ReLU" => "aten::relu",
            "GELU" => "aten::gelu",
            "SELU" => "aten::selu",
            "Sigmoid" => "aten::sigmoid",
            "Tanh" => "aten::tanh",
            "Identity" => return Ok(x),
            other => return lower_opaque(low, node, other),
        };
        low.g.emit(name, vec![x], "")
    })
}

fn lower_opaque(
    low: &mut Lowering<'_>,
    node: &fx_core::Node,
    type_name: &str,
) -> Result<JValue> {
    let inputs = node
        .args()
        .iter()
        .map(|a| low.arg_value(a))
        .collect::<Result<Vec<_>>>()?;
    Ok(low.g.emit(
        "prim::CallMethod",
        inputs,
        &format!("name=\"forward\" type={type_name}"),
    ))
}

fn lower_call(low: &mut Lowering<'_>, node: &fx_core::Node) -> Result<JValue> {
    let target = node.target();
    // Binary arithmetic carries the alpha scalar in TorchScript.
    if matches!(target, "add" | "sub") {
        let a = low.arg_value(&node.args()[0])?;
        let b = low.arg_value(&node.args()[1])?;
        let alpha = low.int_const(1);
        return Ok(low.g.emit(&format!("aten::{target}"), vec![a, b, alpha], ""));
    }
    let inputs = node
        .args()
        .iter()
        .map(|a| low.arg_value(a))
        .collect::<Result<Vec<_>>>()?;
    Ok(low.g.emit(&format!("aten::{target}"), inputs, ""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{func, symbolic_trace, symbolic_trace_fn};
    use fx_models::resnet_tiny;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    #[test]
    fn scalars_become_constant_nodes() {
        let gm = symbolic_trace_fn(1, |xs| {
            func::add(&xs[0], &fx_core::Value::Float(std::f64::consts::PI))
        })
        .unwrap();
        let jg = trace_lower(&gm).unwrap();
        let hist = jg.histogram();
        // pi and the alpha scalar.
        assert_eq!(hist["prim::Constant"], 2);
        assert_eq!(hist["aten::add"], 1);
        // fx: 3 nodes (ph, add, output); trace IR: 3 ops for one add.
        assert!(jg.op_count() > gm.graph().len() - 2);
    }

    #[test]
    fn constants_are_deduplicated() {
        let gm = symbolic_trace_fn(1, |xs| {
            let a = func::add(&xs[0], &fx_core::Value::Float(1.0))?;
            func::add(&a, &fx_core::Value::Float(1.0))
        })
        .unwrap();
        let jg = trace_lower(&gm).unwrap();
        // "1" (float) and alpha "1" (int) share one constant under
        // payload keying; adds contribute 2 ops.
        assert!(jg.histogram()["prim::Constant"] <= 2);
    }

    #[test]
    fn conv_expands_to_getattrs_lists_and_aten() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = resnet_tiny(&mut rng);
        let gm = symbolic_trace(&model).unwrap();
        let jg = trace_lower(&gm).unwrap();
        let hist = jg.histogram();
        assert!(hist["prim::GetAttr"] > 30, "{hist:?}");
        assert!(hist["prim::ListConstruct"] > 20);
        assert!(hist.contains_key("aten::conv2d"));
        assert!(hist.contains_key("aten::batch_norm"));
        // The headline: trace IR is much larger than fx IR.
        assert!(
            jg.op_count() > 2 * gm.graph().len(),
            "trace {} vs fx {}",
            jg.op_count(),
            gm.graph().len()
        );
        // And it dumps in TorchScript style.
        let dump = jg.dump(12);
        assert!(dump.contains("prim::GetAttr"));
    }
}
