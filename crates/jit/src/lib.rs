//! # fx-jit — TorchScript-like comparator IRs
//!
//! The substrate for reproducing the paper's §6.1 IR-complexity study
//! (Figure 5): a rich IR with constants, data-structure construction,
//! attribute chains and control-flow blocks ([`JGraph`]), plus the two
//! front-ends the paper counts against:
//!
//! * [`trace_lower`] — `torch.jit.trace` style: specialize one execution
//!   path but keep every scalar/list/GetAttr as an explicit node;
//! * [`script_compile`] — `torch.jit.script` style: compile the module
//!   hierarchy as written, keeping `prim::If` branches, asserts and
//!   training-mode bookkeeping.
//!
//! The fx side of the comparison comes from `fx-core` itself
//! (module-level default trace, or the functional-level
//! trace-through-everything configuration used in the harness).

#![warn(missing_docs)]

mod jir;
mod script;
mod trace_lower;

pub use jir::{JGraph, JNode, JValue};
pub use script::{script_compile, AllLeafTracer};
pub use trace_lower::trace_lower;

/// A tracer that traces **through** every module, producing the
/// functional-level fx graph (`get_attr` + `call_function` nodes instead
/// of opaque `call_module`s) — the finest-grained fx representation and
/// another §5.2 `is_leaf_module` customization.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoLeafTracer;

impl fx_core::Tracer for NoLeafTracer {
    fn is_leaf_module(&self, _module: &dyn fx_core::Module, _qualified_name: &str) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fx_core::{symbolic_trace, symbolic_trace_with, Opcode};
    use fx_models::resnet_tiny;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn functional_level_trace_has_no_call_modules() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = resnet_tiny(&mut rng);
        let gm = symbolic_trace_with(&model, Arc::new(NoLeafTracer)).unwrap();
        assert!(gm
            .graph()
            .nodes()
            .all(|n| n.op() != Opcode::CallModule));
        assert!(gm.graph().nodes().any(|n| n.op() == Opcode::GetAttr));
        // Functional level sits between module level and jit-trace level.
        let module_level = symbolic_trace(&model).unwrap().graph().len();
        assert!(gm.graph().len() > module_level);
        // And it still runs correctly.
        use fx_core::Value;
        use fx_tensor::Tensor;
        let x = Value::Tensor(Tensor::randn(&[1, 3, 32, 32], &mut rng));
        let a = gm.run(&[x.clone()]).unwrap();
        let b = symbolic_trace(&model).unwrap().run(&[x]).unwrap();
        assert!(a
            .as_tensor()
            .unwrap()
            .allclose(b.as_tensor().unwrap(), 1e-3));
    }
}
