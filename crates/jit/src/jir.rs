//! The rich, TorchScript-like IR used as the comparison point in the
//! paper's §6.1 IR-complexity study.
//!
//! Unlike the 6-opcode fx IR, this IR has everything Figure 5(a) shows:
//! `prim::Constant` nodes for every scalar, `prim::ListConstruct` /
//! `prim::TupleConstruct` for data structures, `prim::GetAttr` chains
//! for module-hierarchy access, and `prim::If` / `prim::Loop` nodes with
//! nested blocks for control flow. The point of rebuilding it is to make
//! the paper's op-count comparison *structural* rather than asserted:
//! the counts fall out of the representation.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One value id in a [`JGraph`].
pub type JValue = usize;

/// A node in the rich IR. `kind` is the qualified op name
/// (`aten::conv2d`, `prim::Constant`, ...); control-flow nodes carry
/// nested blocks.
#[derive(Debug, Clone)]
pub struct JNode {
    /// Qualified op kind.
    pub kind: String,
    /// Input value ids.
    pub inputs: Vec<JValue>,
    /// Output value id.
    pub output: JValue,
    /// Display annotation (constant payloads, attribute names).
    pub annotation: String,
    /// Nested blocks (for `prim::If` / `prim::Loop`).
    pub blocks: Vec<JGraph>,
}

/// A block/graph of rich-IR nodes.
#[derive(Debug, Clone, Default)]
pub struct JGraph {
    /// Nodes in order.
    pub nodes: Vec<JNode>,
    next_value: JValue,
    /// Ids of graph inputs.
    pub inputs: Vec<JValue>,
}

impl JGraph {
    /// An empty graph.
    pub fn new() -> JGraph {
        JGraph::default()
    }

    /// Add a graph input and return its value id.
    pub fn add_input(&mut self) -> JValue {
        let v = self.fresh();
        self.inputs.push(v);
        v
    }

    /// Allocate a fresh value id.
    pub fn fresh(&mut self) -> JValue {
        let v = self.next_value;
        self.next_value += 1;
        v
    }

    /// Emit a node, returning its output value.
    pub fn emit(&mut self, kind: &str, inputs: Vec<JValue>, annotation: &str) -> JValue {
        let output = self.fresh();
        self.nodes.push(JNode {
            kind: kind.to_string(),
            inputs,
            output,
            annotation: annotation.to_string(),
            blocks: Vec::new(),
        });
        output
    }

    /// Emit a control-flow node with nested blocks.
    pub fn emit_with_blocks(
        &mut self,
        kind: &str,
        inputs: Vec<JValue>,
        annotation: &str,
        blocks: Vec<JGraph>,
    ) -> JValue {
        let output = self.fresh();
        self.nodes.push(JNode {
            kind: kind.to_string(),
            inputs,
            output,
            annotation: annotation.to_string(),
            blocks,
        });
        output
    }

    /// Total operation count, recursing into nested blocks — the §6.1
    /// metric.
    pub fn op_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| 1 + n.blocks.iter().map(JGraph::op_count).sum::<usize>())
            .sum()
    }

    /// Count of ops per kind, recursing into blocks.
    pub fn histogram(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        fn walk(g: &JGraph, out: &mut BTreeMap<String, usize>) {
            for n in &g.nodes {
                *out.entry(n.kind.clone()).or_insert(0) += 1;
                for b in &n.blocks {
                    walk(b, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// TorchScript-style textual dump (truncated to `limit` lines), like
    /// the paper's Figure 5(a).
    pub fn dump(&self, limit: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "graph({}):",
            self.inputs
                .iter()
                .map(|v| format!("%{v}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let mut lines = 0usize;
        dump_block(self, 1, limit, &mut lines, &mut out);
        if lines >= limit {
            let _ = writeln!(out, "  ... ({} ops total)", self.op_count());
        }
        out
    }
}

fn dump_block(g: &JGraph, depth: usize, limit: usize, lines: &mut usize, out: &mut String) {
    for n in &g.nodes {
        if *lines >= limit {
            return;
        }
        *lines += 1;
        let indent = "  ".repeat(depth);
        let inputs = n
            .inputs
            .iter()
            .map(|v| format!("%{v}"))
            .collect::<Vec<_>>()
            .join(", ");
        let ann = if n.annotation.is_empty() {
            String::new()
        } else {
            format!("[{}]", n.annotation)
        };
        let _ = writeln!(out, "{indent}%{} : {}{}({})", n.output, n.kind, ann, inputs);
        for b in &n.blocks {
            if *lines >= limit {
                return;
            }
            *lines += 1;
            let _ = writeln!(out, "{indent}  block:");
            dump_block(b, depth + 2, limit, lines, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_recurses_into_blocks() {
        let mut g = JGraph::new();
        let x = g.add_input();
        let c = g.emit("prim::Constant", vec![], "value=1");
        let mut then_b = JGraph::new();
        then_b.emit("aten::relu_", vec![x], "");
        let mut else_b = JGraph::new();
        else_b.emit("aten::relu", vec![x], "");
        g.emit_with_blocks("prim::If", vec![c], "", vec![then_b, else_b]);
        assert_eq!(g.op_count(), 4);
        let hist = g.histogram();
        assert_eq!(hist["prim::Constant"], 1);
        assert_eq!(hist["aten::relu"], 1);
        assert_eq!(hist["prim::If"], 1);
    }

    #[test]
    fn dump_looks_like_torchscript() {
        let mut g = JGraph::new();
        let x = g.add_input();
        g.emit("aten::relu", vec![x], "");
        let text = g.dump(10);
        assert!(text.starts_with("graph(%0):"));
        assert!(text.contains("aten::relu(%0)"));
    }

    #[test]
    fn dump_truncates() {
        let mut g = JGraph::new();
        for _ in 0..50 {
            g.emit("prim::Constant", vec![], "");
        }
        let text = g.dump(5);
        assert!(text.contains("(50 ops total)"));
    }
}
