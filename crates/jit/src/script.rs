//! `torch.jit.script`-style compilation: build the rich IR from the
//! **module hierarchy**, keeping the control flow and checks that an
//! AST-driven compiler cannot erase.
//!
//! Where jit.trace records one specialized path, jit.script compiles
//! each module's forward *as written*: padding-mode branches in conv,
//! training-mode branches and dimension asserts in batch norm,
//! inplace-flag branches in activations, `if self.training` in dropout.
//! Those `prim::If` / `prim::RaiseException` structures are what make
//! the scripted ResNet50 graph ~6× the fx graph in the paper's Figure 5.
//!
//! Each built-in layer type gets a structural template transcribed from
//! real TorchScript dumps of the corresponding `torch.nn` module;
//! user-defined modules are compiled by tracing them one level deep
//! (children opaque) and inlining each child's scripted body — matching
//! jit.script's recursive compilation with inlining.

use crate::jir::{JGraph, JValue};
use fx_core::{symbolic_trace_with, Arg, Error, Module, NodeId, Opcode, Result, Tracer};
use fx_nn::{AdaptiveAvgPool2d, AvgPool2d, Conv2d, MaxPool2d};
use std::collections::HashMap;
use std::sync::Arc;

/// A tracer that keeps *every* submodule opaque — used to recover each
/// module's own forward body one level at a time (and, independently, a
/// demonstration of §5.2's `is_leaf_module` customization).
#[derive(Debug, Default, Clone, Copy)]
pub struct AllLeafTracer;

impl Tracer for AllLeafTracer {
    fn is_leaf_module(&self, _module: &dyn Module, _qualified_name: &str) -> bool {
        true
    }
}

/// Compile the module hierarchy into script-style rich IR.
pub fn script_compile(root: &dyn Module) -> Result<JGraph> {
    let mut g = JGraph::new();
    let self_val = g.add_input();
    let x = g.add_input();
    let mut s = Scripter { g };
    s.script_module(root, self_val, x)?;
    Ok(s.g)
}

struct Scripter {
    g: JGraph,
}

impl Scripter {
    fn constant(&mut self, payload: &str) -> JValue {
        self.g
            .emit("prim::Constant", vec![], &format!("value={payload}"))
    }

    fn getattr(&mut self, obj: JValue, name: &str) -> JValue {
        self.g
            .emit("prim::GetAttr", vec![obj], &format!("name=\"{name}\""))
    }

    fn pair_list(&mut self, p: (usize, usize)) -> JValue {
        let a = self.constant(&p.0.to_string());
        let b = self.constant(&p.1.to_string());
        self.g.emit("prim::ListConstruct", vec![a, b], "")
    }

    /// `if cond` with structural then/else blocks.
    fn emit_if(&mut self, cond: JValue, then_b: JGraph, else_b: JGraph) -> JValue {
        self.g
            .emit_with_blocks("prim::If", vec![cond], "", vec![then_b, else_b])
    }

    fn script_module(&mut self, m: &dyn Module, self_val: JValue, x: JValue) -> Result<JValue> {
        match m.type_name() {
            "Conv2d" => {
                let conv = m
                    .as_any()
                    .downcast_ref::<Conv2d>()
                    .expect("type_name Conv2d");
                Ok(self.conv_template(conv, self_val, x))
            }
            "BatchNorm2d" => Ok(self.batch_norm_template(self_val, x)),
            "Linear" => {
                let w = self.getattr(self_val, "weight");
                let b = self.getattr(self_val, "bias");
                Ok(self.g.emit("aten::linear", vec![x, w, b], ""))
            }
            "ReLU" => Ok(self.inplace_activation_template("relu", self_val, x)),
            "GELU" => {
                let approx = self.constant("\"none\"");
                Ok(self.g.emit("aten::gelu", vec![x, approx], ""))
            }
            "SELU" => Ok(self.inplace_activation_template("selu", self_val, x)),
            "Sigmoid" => Ok(self.g.emit("aten::sigmoid", vec![x], "")),
            "Tanh" => Ok(self.g.emit("aten::tanh", vec![x], "")),
            "MaxPool2d" => {
                let p = m
                    .as_any()
                    .downcast_ref::<MaxPool2d>()
                    .expect("type_name MaxPool2d");
                Ok(self.max_pool_template(p, self_val, x))
            }
            "AvgPool2d" => {
                let p = m
                    .as_any()
                    .downcast_ref::<AvgPool2d>()
                    .expect("type_name AvgPool2d");
                let k = self.pair_list(p.kernel_size);
                let s = self.pair_list(p.stride);
                let pad = self.pair_list(p.padding);
                let ceil = self.constant("False");
                let include = self.constant("True");
                Ok(self
                    .g
                    .emit("aten::avg_pool2d", vec![x, k, s, pad, ceil, include], ""))
            }
            "AdaptiveAvgPool2d" => {
                let p = m
                    .as_any()
                    .downcast_ref::<AdaptiveAvgPool2d>()
                    .expect("type_name AdaptiveAvgPool2d");
                let o = self.pair_list(p.output_size);
                Ok(self.g.emit("aten::adaptive_avg_pool2d", vec![x, o], ""))
            }
            "Flatten" => {
                let s = self.constant("1");
                let e = self.constant("-1");
                Ok(self.g.emit("aten::flatten", vec![x, s, e], ""))
            }
            "Dropout" => Ok(self.dropout_template(self_val, x)),
            "Identity" => Ok(x),
            // User-defined / container modules: compile their own body.
            _ => self.script_user_module(m, self_val, x),
        }
    }

    /// torchvision `Conv2d._conv_forward`: padding-mode branch + the
    /// conv call.
    fn conv_template(&mut self, conv: &Conv2d, self_val: JValue, x: JValue) -> JValue {
        let mode = self.getattr(self_val, "padding_mode");
        let zeros = self.constant("\"zeros\"");
        let ne = self.g.emit("aten::ne", vec![mode, zeros], "");
        let mut padded = JGraph::new();
        let pad_list = padded.emit("prim::ListConstruct", vec![], "");
        let pad = padded.emit("aten::pad", vec![x, pad_list], "");
        padded.emit("aten::conv2d", vec![pad], "");
        self.emit_if(ne, padded, JGraph::new());
        let w = self.getattr(self_val, "weight");
        let b = if conv.bias().is_some() {
            self.getattr(self_val, "bias")
        } else {
            self.constant("None")
        };
        let (stride, padding, dilation, groups) = conv.geometry();
        let s = self.pair_list(stride);
        let p = self.pair_list(padding);
        let d = self.pair_list(dilation);
        let grp = self.constant(&groups.to_string());
        self.g.emit("aten::conv2d", vec![x, w, b, s, p, d, grp], "")
    }

    /// `nn.BatchNorm2d.forward` as scripted: dim assert, training
    /// branch with batch-counter bookkeeping, then `aten::batch_norm`.
    fn batch_norm_template(&mut self, self_val: JValue, x: JValue) -> JValue {
        // _check_input_dim
        let dim = self.g.emit("aten::dim", vec![x], "");
        let four = self.constant("4");
        let ok = self.g.emit("aten::eq", vec![dim, four], "");
        let mut raise_b = JGraph::new();
        let msg = raise_b.emit("prim::Constant", vec![], "value=\"expected 4D input\"");
        raise_b.emit("prim::RaiseException", vec![msg], "");
        self.emit_if(ok, JGraph::new(), raise_b);
        // training-mode momentum bookkeeping
        let training = self.getattr(self_val, "training");
        let mut train_b = JGraph::new();
        let nbt = train_b.emit("prim::GetAttr", vec![self_val], "name=\"num_batches_tracked\"");
        let one = train_b.emit("prim::Constant", vec![], "value=1");
        let upd = train_b.emit("aten::add_", vec![nbt, one], "");
        train_b.emit("prim::SetAttr", vec![self_val, upd], "name=\"num_batches_tracked\"");
        let fone = train_b.emit("prim::Constant", vec![], "value=1.0");
        train_b.emit("aten::div", vec![fone, upd], "");
        self.emit_if(training, train_b, JGraph::new());
        // the normalization itself
        let params: Vec<JValue> = ["weight", "bias", "running_mean", "running_var"]
            .iter()
            .map(|n| self.getattr(self_val, n))
            .collect();
        let momentum = self.constant("0.1");
        let eps = self.constant("1e-05");
        let cudnn = self.constant("True");
        let mut inputs = vec![x];
        inputs.extend(params);
        inputs.extend([training, momentum, eps, cudnn]);
        self.g.emit("aten::batch_norm", inputs, "")
    }

    /// Activations with an `inplace` flag keep the `if` in script.
    fn inplace_activation_template(&mut self, name: &str, self_val: JValue, x: JValue) -> JValue {
        let inplace = self.getattr(self_val, "inplace");
        let mut then_b = JGraph::new();
        then_b.emit(&format!("aten::{name}_"), vec![x], "");
        let mut else_b = JGraph::new();
        else_b.emit(&format!("aten::{name}"), vec![x], "");
        self.emit_if(inplace, then_b, else_b)
    }

    fn max_pool_template(&mut self, p: &MaxPool2d, self_val: JValue, x: JValue) -> JValue {
        let k = self.pair_list(p.kernel_size);
        let s = self.pair_list(p.stride);
        let pad = self.pair_list(p.padding);
        let d = self.pair_list((1, 1));
        let ceil = self.constant("False");
        let ret_idx = self.getattr(self_val, "return_indices");
        let mut with_idx = JGraph::new();
        with_idx.emit("aten::max_pool2d_with_indices", vec![x, k, s, pad, d, ceil], "");
        let mut plain = JGraph::new();
        plain.emit("aten::max_pool2d", vec![x, k, s, pad, d, ceil], "");
        self.emit_if(ret_idx, with_idx, plain)
    }

    fn dropout_template(&mut self, self_val: JValue, x: JValue) -> JValue {
        let training = self.getattr(self_val, "training");
        let p = self.getattr(self_val, "p");
        let mut train_b = JGraph::new();
        train_b.emit("aten::dropout", vec![x, p, training], "");
        self.emit_if(training, train_b, JGraph::new())
    }

    /// User/container modules: recover the forward body via a one-level
    /// trace and inline each child's scripted compilation.
    fn script_user_module(
        &mut self,
        m: &dyn Module,
        self_val: JValue,
        x: JValue,
    ) -> Result<JValue> {
        let traced = symbolic_trace_with(m, Arc::new(AllLeafTracer)).map_err(|e| {
            Error::Trace(format!(
                "script compilation of `{}` failed to recover its forward: {e}",
                m.type_name()
            ))
        })?;
        let mut env: HashMap<NodeId, JValue> = HashMap::new();
        let mut result = x;
        for id in traced.graph().node_ids() {
            let node = traced.graph().node(id).clone();
            match node.op() {
                Opcode::Placeholder => {
                    // Single-input modules only in the evaluation models.
                    env.insert(id, x);
                }
                Opcode::GetAttr => {
                    let v = self.getattr_chain(self_val, node.target());
                    env.insert(id, v);
                }
                Opcode::Output => {
                    result = node
                        .args()
                        .first()
                        .and_then(Arg::as_node)
                        .and_then(|n| env.get(&n).copied())
                        .unwrap_or(result);
                }
                Opcode::CallModule => {
                    let child = traced
                        .get_module(node.target())
                        .cloned()
                        .ok_or_else(|| Error::Module(format!("missing `{}`", node.target())))?;
                    let obj = self.getattr_chain(self_val, node.target());
                    let input = node
                        .args()
                        .first()
                        .and_then(Arg::as_node)
                        .and_then(|n| env.get(&n).copied())
                        .unwrap_or(x);
                    let v = self.script_module(child.as_ref(), obj, input)?;
                    env.insert(id, v);
                }
                Opcode::CallFunction | Opcode::CallMethod => {
                    let v = self.script_call(&node, &env)?;
                    env.insert(id, v);
                }
            }
        }
        Ok(result)
    }

    fn getattr_chain(&mut self, obj: JValue, path: &str) -> JValue {
        let mut cur = obj;
        for seg in path.split('.') {
            cur = self.getattr(cur, seg);
        }
        cur
    }

    fn script_call(
        &mut self,
        node: &fx_core::Node,
        env: &HashMap<NodeId, JValue>,
    ) -> Result<JValue> {
        let mut inputs = Vec::new();
        for arg in node.args() {
            inputs.push(self.script_arg(arg, env)?);
        }
        if matches!(node.target(), "add" | "sub") {
            inputs.push(self.constant("1"));
        }
        Ok(self
            .g
            .emit(&format!("aten::{}", node.target()), inputs, ""))
    }

    fn script_arg(&mut self, arg: &Arg, env: &HashMap<NodeId, JValue>) -> Result<JValue> {
        Ok(match arg {
            Arg::Node(id) => env.get(id).copied().ok_or_else(|| {
                Error::Graph(format!("script: %{} has no value", id.index()))
            })?,
            Arg::Int(v) => self.constant(&v.to_string()),
            Arg::Float(v) => self.constant(&format!("{v:?}")),
            Arg::Bool(v) => self.constant(if *v { "True" } else { "False" }),
            Arg::Str(s) => self.constant(&format!("{s:?}")),
            Arg::None => self.constant("None"),
            Arg::List(items) | Arg::Tuple(items) => {
                let vals = items
                    .iter()
                    .map(|a| self.script_arg(a, env))
                    .collect::<Result<Vec<_>>>()?;
                self.g.emit("prim::ListConstruct", vals, "")
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_lower::trace_lower;
    use fx_core::symbolic_trace;
    use fx_models::resnet_tiny;
    use fx_tensor::rng::StdRng;
    use fx_tensor::rng::SeedableRng;

    #[test]
    fn script_keeps_control_flow() {
        let mut rng = StdRng::seed_from_u64(0);
        let model = resnet_tiny(&mut rng);
        let jg = script_compile(&model).unwrap();
        let hist = jg.histogram();
        assert!(hist["prim::If"] > 0, "{hist:?}");
        assert!(hist.contains_key("prim::RaiseException"));
        assert!(hist.contains_key("prim::SetAttr"));
    }

    #[test]
    fn script_much_larger_than_trace_larger_than_fx() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = resnet_tiny(&mut rng);
        let fx_gm = symbolic_trace(&model).unwrap();
        let fx_count = fx_gm.graph().len();
        let trace_count = trace_lower(&fx_gm).unwrap().op_count();
        let script_count = script_compile(&model).unwrap().op_count();
        assert!(
            script_count > trace_count && trace_count > fx_count,
            "script {script_count} > trace {trace_count} > fx {fx_count} violated"
        );
        assert!(script_count > 2 * fx_count);
    }

    #[test]
    fn all_leaf_tracer_keeps_children_opaque() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = resnet_tiny(&mut rng);
        let depth1 = symbolic_trace_with(&model, Arc::new(AllLeafTracer)).unwrap();
        // layer1..layer4 appear as single opaque calls, not expanded.
        let targets: Vec<&str> = depth1.graph().nodes().map(|n| n.target()).collect();
        assert!(targets.contains(&"layer1"));
        assert!(!targets.iter().any(|t| t.contains("layer1.")));
    }
}
