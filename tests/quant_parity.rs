//! Quantized-model parity suite: a PTQ-converted int8 model must
//! produce **bit-identical** outputs across every executor
//! configuration (memory planning on/off × thread counts), and the
//! serve registry must hot-swap between the f32 and int8 versions of
//! the same model with zero failed requests and version-exact answers.
//!
//! Bit-identity holds because the int8 path accumulates exactly in i32
//! (both the SIMD microkernel and the scalar fallback) and requantizes
//! through one shared per-element epilogue, so neither threading (row
//! partitioning only), planned buffer reuse (dtype-keyed, never across
//! dtypes), nor batch stacking (pure byte concatenation) can perturb a
//! single output byte. The FX_SIMD axis is swept cross-process by
//! `scripts/verify.sh`; in-process engine-vs-engine parity lives in
//! `fx_tensor::quant` unit tests.

use fx::prelude::*;
use fx::serve::{ModelConfig, Registry};
use fx_tensor::rng::{SeedableRng, StdRng};
use std::time::Duration;

const SHAPE: [usize; 4] = [1, 3, 32, 32];

/// resnet_tiny → fuse conv+bn → PTQ with a handful of calibration
/// batches: the same recipe the serve bench and fuzz suite use.
fn f32_and_int8_resnet(seed: u64) -> (GraphModule, GraphModule) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = fx::models::resnet_tiny(&mut rng);
    let mut gm = symbolic_trace(&model).expect("resnet_tiny traces");
    fx::passes::fuse_conv_bn(&mut gm).expect("conv+bn fuses");
    let cal: Vec<Vec<Value>> = (0..3)
        .map(|_| {
            vec![Value::Tensor(Tensor::rand_uniform(
                &[2, 3, 32, 32],
                -1.0,
                1.0,
                &mut rng,
            ))]
        })
        .collect();
    let qgm = fx::quant::quantize_ptq(&gm, &cal, &fx::quant::QConfig::default())
        .expect("PTQ converts");
    (gm, qgm)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_f32()
        .expect("model output is f32")
        .iter()
        .map(|f| f.to_bits())
        .collect()
}

fn run_with(gm: &GraphModule, x: &Tensor, threads: usize, memplan: bool) -> Vec<u32> {
    bits(
        Executor::new(gm)
            .with_threads(threads)
            .with_memory_planning(memplan)
            .run(&[Value::Tensor(x.clone())])
            .expect("executor run")
            .as_tensor()
            .expect("model output is a tensor"),
    )
}

/// The named, deterministic counterpart of the randomized quantized
/// fuzz sweep: one real PTQ model, every memplan × thread combination,
/// all bit-identical to the 1-thread unplanned reference.
#[test]
fn int8_resnet_bit_identical_across_memplan_and_threads() {
    let (_, qgm) = f32_and_int8_resnet(42);
    let mut rng = StdRng::seed_from_u64(43);
    let x = Tensor::rand_uniform(&[4, 3, 32, 32], -1.0, 1.0, &mut rng);
    let want = run_with(&qgm, &x, 1, false);
    for threads in [1, 2, 8] {
        for memplan in [false, true] {
            assert_eq!(
                run_with(&qgm, &x, threads, memplan),
                want,
                "int8 resnet diverged at threads={threads} memplan={memplan}"
            );
        }
    }
}

/// Rows of a stacked batch must be bitwise equal to solo runs — the
/// property that makes dynamic batching of int8 models sound.
#[test]
fn int8_batch_rows_match_solo_runs() {
    let (_, qgm) = f32_and_int8_resnet(44);
    let mut rng = StdRng::seed_from_u64(45);
    let solos: Vec<Tensor> = (0..3)
        .map(|_| Tensor::rand_uniform(&SHAPE, -1.0, 1.0, &mut rng))
        .collect();
    let refs: Vec<&Tensor> = solos.iter().collect();
    let batch = fx_tensor::ops::stack_batch(&refs).expect("f32 inputs stack");
    let batched = Executor::new(&qgm)
        .with_threads(1)
        .run(&[Value::Tensor(batch)])
        .expect("batched run")
        .as_tensor()
        .expect("tensor output")
        .clone();
    let rows = fx_tensor::ops::split_batch(&batched, &[1, 1, 1]).expect("rows split");
    for (i, (x, row)) in solos.iter().zip(&rows).enumerate() {
        assert_eq!(
            bits(row),
            run_with(&qgm, x, 1, false),
            "batch row {i} differs from its solo int8 run"
        );
    }
}

/// Hot-swap smoke for quantized serving: register the f32 model, swap
/// in its int8 PTQ conversion (same input/output interface, so the
/// admission re-check must pass), swap back — every request answered,
/// every answer bit-exact for the version that served it.
#[test]
fn registry_hot_swaps_between_f32_and_int8() {
    let (gm, qgm) = f32_and_int8_resnet(46);
    let mut rng = StdRng::seed_from_u64(47);
    let inputs: Vec<Tensor> = (0..3)
        .map(|_| Tensor::rand_uniform(&SHAPE, -1.0, 1.0, &mut rng))
        .collect();
    let want_f32: Vec<Vec<u32>> = inputs.iter().map(|x| run_with(&gm, x, 1, false)).collect();
    let want_i8: Vec<Vec<u32>> = inputs.iter().map(|x| run_with(&qgm, x, 1, false)).collect();

    let registry = Registry::builder().workers(2).build().expect("registry builds");
    let handle = registry
        .register_with(
            "resnet",
            gm.clone(),
            &[SHAPE.to_vec()],
            ModelConfig::new()
                .max_batch_size(4)
                .max_batch_delay(Duration::from_millis(1)),
        )
        .expect("f32 model registers");

    let serve_all = |want: &[Vec<u32>], label: &str| {
        for (i, x) in inputs.iter().enumerate() {
            let out = handle
                .infer(vec![x.clone()])
                .unwrap_or_else(|e| panic!("{label}: request {i} failed: {e}"));
            assert_eq!(bits(&out[0]), want[i], "{label}: request {i} wrong bits");
        }
    };

    serve_all(&want_f32, "v1 (f32)");
    assert_eq!(registry.swap("resnet", qgm).expect("f32→int8 swap admits"), 2);
    serve_all(&want_i8, "v2 (int8)");
    assert_eq!(registry.swap("resnet", gm).expect("int8→f32 swap admits"), 3);
    serve_all(&want_f32, "v3 (f32 again)");
    let snap = registry.shutdown();
    assert_eq!(snap.aggregate.requests_err, 0, "hot-swap run failed requests");
    assert_eq!(snap.total_swaps, 2, "expected exactly two hot swaps");
}
