//! Cross-crate integration tests: transforms composed the way the
//! paper's case studies compose them.

use fx::backend::lower;
use fx::passes::{
    eliminate_common_subexpressions, estimate, fold_constants, fuse_conv_bn, infer_shapes,
    shape_prop, split_by, to_dot, DeviceSpec,
};
use fx::prelude::*;
use fx::quant::{quantize_ptq, QConfig};
use fx_models::{resnet_tiny, DeepRecommender, Mlp, TransformerEncoderLayer};
use fx_tensor::rng::StdRng;
use fx_tensor::rng::SeedableRng;

fn randn(shape: &[usize], seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::Tensor(Tensor::randn(shape, &mut rng))
}

#[test]
fn fuse_then_lower_then_run() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = resnet_tiny(&mut rng);
    let mut gm = symbolic_trace(&model).unwrap();
    let fused = fuse_conv_bn(&mut gm).unwrap();
    assert!(fused > 0);
    let (lowered, report) = lower(&gm).unwrap();
    assert_eq!(report.fallback_partitions, 0);
    let x = randn(&[1, 3, 32, 32], 1);
    let y0 = gm.run(std::slice::from_ref(&x)).unwrap();
    let y1 = lowered.run(std::slice::from_ref(&x)).unwrap();
    assert!(y0
        .as_tensor()
        .unwrap()
        .allclose(y1.as_tensor().unwrap(), 1e-2));
}

#[test]
fn quantize_then_split_runs_with_fallback() {
    // Quantized ops are not engine-supported; lowering a quantized model
    // must fall back gracefully and stay correct.
    let mut rng = StdRng::seed_from_u64(2);
    let model = Mlp::new(&[16, 32, 8], &mut rng);
    let gm = symbolic_trace(&model).unwrap();
    let cal = vec![vec![randn(&[4, 16], 3)], vec![randn(&[4, 16], 4)]];
    let qgm = quantize_ptq(&gm, &cal, &QConfig::default()).unwrap();
    let (lowered, report) = lower(&qgm).unwrap();
    assert!(report.fallback_partitions > 0);
    let x = randn(&[2, 16], 5);
    let y0 = qgm.run(std::slice::from_ref(&x)).unwrap();
    let y1 = lowered.run(std::slice::from_ref(&x)).unwrap();
    assert!(y0
        .as_tensor()
        .unwrap()
        .allclose(y1.as_tensor().unwrap(), 1e-5));
}

#[test]
fn quantized_cnn_end_to_end() {
    // Fuse conv-bn first (BN has no quantized kernel), then quantize the
    // conv path, then run.
    let mut rng = StdRng::seed_from_u64(6);
    let model = resnet_tiny(&mut rng);
    let mut gm = symbolic_trace(&model).unwrap();
    fuse_conv_bn(&mut gm).unwrap();
    let cal: Vec<Vec<Value>> = (0..3).map(|i| vec![randn(&[1, 3, 32, 32], 10 + i)]).collect();
    let qgm = quantize_ptq(&gm, &cal, &QConfig::default()).unwrap();
    assert!(
        qgm.modules()
            .values()
            .any(|m| m.type_name().starts_with("QuantizedConv2d")),
        "convs should quantize after fusion:\n{}",
        qgm.code()
    );
    let x = randn(&[1, 3, 32, 32], 20);
    let y_ref = gm.run(std::slice::from_ref(&x)).unwrap();
    let y_q = qgm.run(std::slice::from_ref(&x)).unwrap();
    // int8 CNN drifts more than an MLP; demand the right argmax rather
    // than tight numerics.
    let am_ref = fx::tensor::ops::argmax(y_ref.as_tensor().unwrap(), -1).unwrap();
    let am_q = fx::tensor::ops::argmax(y_q.as_tensor().unwrap(), -1).unwrap();
    assert_eq!(am_ref.as_i64().unwrap(), am_q.as_i64().unwrap());
}

#[test]
fn analysis_stack_composes() {
    let mut rng = StdRng::seed_from_u64(7);
    let model = DeepRecommender::new(128, &mut rng);
    let mut gm = symbolic_trace(&model).unwrap();
    // Concrete shapes -> estimator -> report renders.
    shape_prop(&mut gm, &[randn(&[2, 128], 8)]).unwrap();
    let report = estimate(&gm, &DeviceSpec::xeon_6138()).unwrap();
    assert!(report.total_flops > 0);
    // Abstract agrees on this model.
    let mut gm2 = symbolic_trace(&model).unwrap();
    let inferred = infer_shapes(&mut gm2, &[vec![2, 128]]).unwrap();
    assert_eq!(inferred["fc5"], vec![2, 128]);
    // DOT renders with shapes.
    let dot = to_dot(&gm, "deeprecommender");
    assert!(dot.contains("shape=[2, 128]"));
}

#[test]
fn cleanup_passes_preserve_semantics_on_transformer() {
    let mut rng = StdRng::seed_from_u64(9);
    let layer = TransformerEncoderLayer::new(16, 2, &mut rng);
    // Batch/seq are shape arguments: specialize them via concrete_args
    // (the paper's §5.2 escape hatch), keeping the tensor symbolic.
    let gm = fx_core::symbolic_trace_concrete(
        &layer,
        std::sync::Arc::new(fx_core::DefaultTracer),
        &[None, Some(Value::Int(2)), Some(Value::Int(3))],
    )
    .unwrap();
    let x = randn(&[2, 3, 16], 10);
    let inputs = [x];
    let y0 = gm.run(&inputs).unwrap();

    let mut cleaned = gm.clone();
    eliminate_common_subexpressions(&mut cleaned).unwrap();
    fold_constants(&mut cleaned).unwrap();
    cleaned.graph_mut().eliminate_dead_code();
    cleaned.recompile().unwrap();
    cleaned.graph().lint().unwrap();
    let y1 = cleaned.run(&inputs).unwrap();
    assert!(y0
        .as_tensor()
        .unwrap()
        .allclose(y1.as_tensor().unwrap(), 1e-5));
}

#[test]
fn split_recombine_identity_on_recommender() {
    let mut rng = StdRng::seed_from_u64(11);
    let model = DeepRecommender::new(64, &mut rng);
    let gm = symbolic_trace(&model).unwrap();
    // Split at every SELU: alternating supported/unsupported partitions.
    let split = split_by(&gm, &|n| !n.target().starts_with("act")).unwrap();
    assert!(split.partitions.len() >= 5);
    let x = randn(&[2, 64], 12);
    let y0 = gm.run(std::slice::from_ref(&x)).unwrap();
    let y1 = split.module.run(std::slice::from_ref(&x)).unwrap();
    assert!(y0
        .as_tensor()
        .unwrap()
        .allclose(y1.as_tensor().unwrap(), 1e-6));
}

#[test]
fn to_folder_writes_sources() {
    let gm = symbolic_trace_fn(1, |xs| func::relu(&xs[0])).unwrap();
    let dir = std::env::temp_dir().join("fx_to_folder_test");
    gm.to_folder(&dir).unwrap();
    let py = std::fs::read_to_string(dir.join("module.py")).unwrap();
    assert!(py.contains("def forward"));
    let rs = std::fs::read_to_string(dir.join("module.rs")).unwrap();
    assert!(rs.contains("fn forward"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn transformer_traces_as_basic_block_program() {
    // §2.3 / §5.5: a Transformer encoder layer is a flat DAG — no control
    // flow anywhere in the captured IR.
    let mut rng = StdRng::seed_from_u64(13);
    let layer = TransformerEncoderLayer::new(32, 4, &mut rng);
    let traced = fx_core::symbolic_trace_concrete(
        &layer,
        std::sync::Arc::new(fx_core::DefaultTracer),
        &[None, Some(Value::Int(1)), Some(Value::Int(4))],
    )
    .unwrap();
    traced.graph().lint().unwrap();
    assert!(traced.graph().len() > 20);
    let x = randn(&[1, 4, 32], 14);
    let y0 = layer
        .forward(&[x.clone(), Value::Int(1), Value::Int(4)])
        .unwrap();
    let y1 = traced.run(&[x]).unwrap();
    assert!(y0
        .as_tensor()
        .unwrap()
        .allclose(y1.as_tensor().unwrap(), 1e-4));
}
