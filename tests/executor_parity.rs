//! Executor parity suite: every execution path — the default prepared
//! [`ExecutorBackend`], the parallel plan-cached executor (1, 2, and 8
//! threads), the exact-mode AoT [`EngineBackend`], and the codegen
//! round-trip (print → parse → rebuild → run) — must be
//! **bit-identical** on the paper's evaluation models — including after
//! conv–BN fusion and post-training quantization.
//!
//! Bit-identity (not `allclose`) holds because every node is computed by
//! the same kernel on the same inputs regardless of scheduling: the plan
//! only reorders *independent* nodes, and kernels chunk
//! deterministically.

use fx::backend::EngineBackend;
use fx::passes::fuse_conv_bn;
use fx::prelude::*;
use fx::quant::{quantize_ptq, QConfig};
use fx_models::{resnet50, DeepRecommender, LearningToPaintActor};
use fx_tensor::rng::{SeedableRng, StdRng};

fn randn(shape: &[usize], seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::Tensor(Tensor::randn(shape, &mut rng))
}

fn as_bits(v: &Value) -> Vec<u32> {
    v.as_tensor()
        .expect("model output is a tensor")
        .as_f32()
        .expect("model output is f32")
        .iter()
        .map(|f| f.to_bits())
        .collect()
}

/// Rebuild the module from its printed graph text (the codegen
/// round-trip) with the same parameters attached.
fn round_trip(gm: &GraphModule) -> GraphModule {
    let text = gm.graph().to_string();
    let parsed = fx::core::parse_graph(&text).expect("printed graph reparses");
    let (_, modules, attrs, input_names) = gm.clone().into_parts();
    GraphModule::new(parsed, modules, attrs, input_names).expect("reparsed graph lints")
}

/// All execution paths agree bit-for-bit on `inputs`: the prepared
/// default backend, the executor across inter-op thread counts × memory
/// planning on/off × intra-op kernel-pool threads (1 vs 4), the
/// exact-mode engine backend, and the codegen round-trip.
fn assert_paths_bit_identical(gm: &GraphModule, inputs: &[Value], label: &str) {
    let reference = as_bits(
        &ExecutorBackend
            .prepare(gm)
            .and_then(|p| p.run(inputs))
            .unwrap_or_else(|e| panic!("{label}: prepared executor failed: {e}")),
    );
    for planning in [false, true] {
        for threads in [1, 2, 8] {
            let out = Executor::new(gm)
                .with_memory_planning(planning)
                .with_threads(threads)
                .run(inputs)
                .unwrap_or_else(|e| {
                    panic!("{label}: executor({threads}, memplan={planning}) failed: {e}")
                });
            assert_eq!(
                reference,
                as_bits(&out),
                "{label}: executor with {threads} thread(s), memplan={planning} \
                 diverged from the interpreter"
            );
        }
    }
    // Kernel chunking is thread-count-invariant: more intra-op pool
    // threads must not move a bit either.
    let prev = fx_tensor::threading::num_threads();
    for kernel_threads in [1usize, 4] {
        fx_tensor::threading::set_num_threads(kernel_threads);
        let out = Executor::new(gm)
            .with_memory_planning(true)
            .run(inputs)
            .unwrap_or_else(|e| panic!("{label}: executor(kt={kernel_threads}) failed: {e}"));
        assert_eq!(
            reference,
            as_bits(&out),
            "{label}: {kernel_threads} kernel thread(s) diverged"
        );
    }
    fx_tensor::threading::set_num_threads(prev);
    // The AoT engine in exact mode (conv–BN folding and pointwise
    // routing off) answers through the same trait object and must not
    // move a bit either. Graphs it cannot compile (e.g. quantized ones)
    // fall back to the executor inside the backend, which is equally
    // bound by this assertion.
    let engine = EngineBackend::new()
        .prepare(gm)
        .and_then(|p| p.run(inputs))
        .unwrap_or_else(|e| panic!("{label}: engine backend failed: {e}"));
    assert_eq!(
        reference,
        as_bits(&engine),
        "{label}: exact-mode engine backend diverged"
    );
    let rt = round_trip(gm);
    let out = rt
        .run(inputs)
        .unwrap_or_else(|e| panic!("{label}: round-tripped module failed: {e}"));
    assert_eq!(
        reference,
        as_bits(&out),
        "{label}: codegen round-trip diverged"
    );
}

#[test]
fn resnet50_parity_and_after_fusion() {
    let mut rng = StdRng::seed_from_u64(50);
    let model = resnet50(3, 10, &mut rng);
    let mut gm = symbolic_trace(&model).unwrap();
    let x = randn(&[1, 3, 32, 32], 1);
    assert_paths_bit_identical(&gm, std::slice::from_ref(&x), "resnet50");

    let fused = fuse_conv_bn(&mut gm).unwrap();
    assert!(fused > 0, "resnet50 must have conv-bn pairs to fuse");
    assert_paths_bit_identical(&gm, std::slice::from_ref(&x), "resnet50+fuse");
}

#[test]
fn learning_to_paint_actor_parity_and_after_fusion() {
    let mut rng = StdRng::seed_from_u64(51);
    let actor = LearningToPaintActor::new(&mut rng);
    let mut gm = symbolic_trace(&actor).unwrap();
    let x = randn(&[1, 9, 32, 32], 2);
    assert_paths_bit_identical(&gm, std::slice::from_ref(&x), "paint-actor");

    let fused = fuse_conv_bn(&mut gm).unwrap();
    assert!(fused > 0, "the actor's backbone must fuse");
    assert_paths_bit_identical(&gm, std::slice::from_ref(&x), "paint-actor+fuse");
}

#[test]
fn deep_recommender_parity_and_after_quantization() {
    let mut rng = StdRng::seed_from_u64(52);
    let model = DeepRecommender::new(64, &mut rng);
    let gm = symbolic_trace(&model).unwrap();
    let x = randn(&[2, 64], 3);
    assert_paths_bit_identical(&gm, std::slice::from_ref(&x), "recommender");

    let batches: Vec<Vec<Value>> = (0..4).map(|s| vec![randn(&[2, 64], 100 + s)]).collect();
    let quantized = quantize_ptq(&gm, &batches, &QConfig::default()).unwrap();
    assert_paths_bit_identical(&quantized, std::slice::from_ref(&x), "recommender+ptq");
}

#[test]
fn plan_cache_hits_until_mutation() {
    let mut rng = StdRng::seed_from_u64(53);
    let model = DeepRecommender::new(32, &mut rng);
    let mut gm = symbolic_trace(&model).unwrap();
    let x = randn(&[1, 32], 4);

    let (_, p1) = Executor::new(&gm)
        .run_profiled(std::slice::from_ref(&x))
        .unwrap();
    assert!(!p1.plan_cache_hit, "first run compiles");
    assert_eq!(p1.plan_compiles, 1);

    let (_, p2) = Executor::new(&gm)
        .with_threads(8)
        .run_profiled(std::slice::from_ref(&x))
        .unwrap();
    assert!(p2.plan_cache_hit, "repeat run on an unmutated graph hits");
    assert_eq!(p2.plan_compiles, 1, "no re-levelization on a hit");

    // Any structural edit bumps the graph version and invalidates.
    let id = gm
        .graph()
        .nodes()
        .find(|n| n.op() == Opcode::CallModule)
        .unwrap()
        .id();
    let target = gm.graph().node(id).target().to_string();
    gm.graph_mut().set_target(id, &target).unwrap();
    let (_, p3) = Executor::new(&gm)
        .run_profiled(std::slice::from_ref(&x))
        .unwrap();
    assert!(!p3.plan_cache_hit, "mutation must invalidate the plan");
    assert_eq!(p3.plan_compiles, 2);
}
