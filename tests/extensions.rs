//! Integration tests for the paper-adjacent extensions (DESIGN.md §7):
//! symbolic shapes, QAT, the DLRM and LSTM models, concrete_args, and
//! the backend ablation knobs — exercised end to end through the public
//! facade.

use fx::backend::{compile_with, lower, CompileOptions};
use fx::passes::{infer_sym_shapes, shape_prop, SymDim};
use fx::prelude::*;
use fx::quant::{convert_qat, prepare_qat};
use fx_models::{resnet_tiny, Dlrm, Lstm, Mlp};
use fx_tensor::rng::StdRng;
use fx_tensor::rng::{Rng, SeedableRng};

#[test]
fn symbolic_batch_flows_through_resnet_and_binds_correctly() {
    let mut rng = StdRng::seed_from_u64(0);
    let model = resnet_tiny(&mut rng);
    let gm = symbolic_trace(&model).unwrap();
    let shapes = infer_sym_shapes(
        &gm,
        &[vec![
            SymDim::var("N"),
            SymDim::Const(3),
            SymDim::Const(32),
            SymDim::Const(32),
        ]],
    )
    .unwrap();
    let out = &shapes["output"];
    assert_eq!(out[0], SymDim::var("N"));
    assert_eq!(out[1], SymDim::Const(10));
    // Bind N=2 and cross-check against an actual run.
    let mut bindings = std::collections::HashMap::new();
    bindings.insert("N".to_string(), 2usize);
    let evaled: Vec<usize> = out.iter().map(|d| d.eval(&bindings).unwrap()).collect();
    let x = Value::Tensor(Tensor::randn(&[2, 3, 32, 32], &mut rng));
    let y = gm.run(&[x]).unwrap();
    assert_eq!(y.as_tensor().unwrap().shape(), evaled.as_slice());
}

#[test]
fn qat_then_convert_then_lower_composes() {
    let mut rng = StdRng::seed_from_u64(1);
    let model = Mlp::new(&[8, 16, 4], &mut rng);
    let gm = symbolic_trace(&model).unwrap();
    let qat = prepare_qat(&gm).unwrap();
    for _ in 0..4 {
        let x = Value::Tensor(Tensor::rand_uniform(&[4, 8], -1.0, 1.0, &mut rng));
        qat.run(&[x]).unwrap();
    }
    let converted = convert_qat(&qat).unwrap();
    // Quantized ops fall back on the interpreter when lowered.
    let (lowered, report) = lower(&converted).unwrap();
    assert!(report.fallback_partitions > 0);
    let x = Value::Tensor(Tensor::rand_uniform(&[2, 8], -1.0, 1.0, &mut rng));
    let a = converted.run(std::slice::from_ref(&x)).unwrap();
    let b = lowered.run(std::slice::from_ref(&x)).unwrap();
    assert!(a
        .as_tensor()
        .unwrap()
        .allclose(b.as_tensor().unwrap(), 1e-5));
}

#[test]
fn dlrm_traces_shapes_and_survives_shape_prop() {
    let mut rng = StdRng::seed_from_u64(2);
    let fields = [40usize, 25];
    let model = Dlrm::new(4, &fields, 8, &mut rng);
    let mut gm = symbolic_trace(&model).unwrap();
    let mut inputs = vec![Value::Tensor(Tensor::rand_uniform(&[3, 4], 0.0, 1.0, &mut rng))];
    for &v in &fields {
        let idx: Vec<i64> = (0..3).map(|_| rng.gen_range(0..v as i64)).collect();
        inputs.push(Value::Tensor(Tensor::from_i64(idx, &[3])));
    }
    let out = shape_prop(&mut gm, &inputs).unwrap();
    assert_eq!(out.as_tensor().unwrap().shape(), &[3, 1]);
    // Embedding lookups got i64 dtype metadata; the matmul interaction
    // node exists with a [3, 3, 3] shape (F+1 = 3 features).
    let inter = gm
        .graph()
        .nodes()
        .find(|n| n.target() == "matmul")
        .unwrap();
    assert_eq!(inter.shape_meta(), Some(&[3usize, 3, 3][..]));
}

#[test]
fn lstm_in_a_lowered_pipeline_falls_back_gracefully() {
    // An Lstm leaf is not engine-supported; lower() must fall back while
    // the surrounding ops still compile.
    #[derive(Debug)]
    struct SeqClassifier {
        lstm: fx_core::ArcModule,
        head: fx_core::ArcModule,
    }
    impl Module for SeqClassifier {
        fn forward(&self, xs: &[Value]) -> fx_core::Result<Value> {
            let h = self.lstm.call(&[xs[0].clone()])?;
            let pooled = fx_core::func::mean_dim(&h, 1, false)?;
            let logits = self.head.call(&[pooled])?;
            fx_core::func::relu(&logits)
        }
        fn type_name(&self) -> &'static str {
            "SeqClassifier"
        }
        fn children(&self) -> Vec<(String, fx_core::ArcModule)> {
            vec![
                ("lstm".to_string(), self.lstm.clone()),
                ("head".to_string(), self.head.clone()),
            ]
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut rng = StdRng::seed_from_u64(3);
    let model = SeqClassifier {
        lstm: std::sync::Arc::new(Lstm::new(4, 6, &mut rng)),
        head: std::sync::Arc::new(fx::nn::Linear::new(6, 3, &mut rng)),
    };
    let gm = symbolic_trace(&model).unwrap();
    let (lowered, report) = lower(&gm).unwrap();
    assert!(report.fallback_partitions >= 1, "lstm must fall back");
    assert!(report.engine_partitions >= 1, "head+relu must compile");
    let x = Value::Tensor(Tensor::randn(&[2, 5, 4], &mut rng));
    let a = gm.run(std::slice::from_ref(&x)).unwrap();
    let b = lowered.run(std::slice::from_ref(&x)).unwrap();
    assert!(a
        .as_tensor()
        .unwrap()
        .allclose(b.as_tensor().unwrap(), 1e-5));
}

#[test]
fn ablation_knobs_preserve_semantics_everywhere() {
    let mut rng = StdRng::seed_from_u64(4);
    let model = resnet_tiny(&mut rng);
    let gm = symbolic_trace(&model).unwrap();
    let x = Tensor::randn(&[1, 3, 32, 32], &mut rng);
    let reference = compile_with(&gm, CompileOptions::default())
        .unwrap()
        .run(std::slice::from_ref(&x))
        .unwrap();
    for (name, opts) in [
        (
            "no_bn_fold",
            CompileOptions {
                fuse_conv_bn: false,
                ..Default::default()
            },
        ),
        (
            "no_epilogues",
            CompileOptions {
                fuse_epilogues: false,
                ..Default::default()
            },
        ),
        (
            "no_chains",
            CompileOptions {
                fuse_unary_chains: false,
                ..Default::default()
            },
        ),
        (
            "no_planning",
            CompileOptions {
                plan_registers: false,
                ..Default::default()
            },
        ),
    ] {
        let engine = compile_with(&gm, opts).unwrap();
        let out = engine.run(std::slice::from_ref(&x)).unwrap();
        assert!(
            out.allclose(&reference, 1e-2),
            "ablation `{name}` changed results"
        );
    }
}

#[test]
fn concrete_args_compose_with_backend_lowering() {
    // Specialize a shape-dependent function, then lower the specialized
    // capture.
    let gm = symbolic_trace_fn(1, |xs| {
        let flat = fx_core::func::flatten(&xs[0], 1, -1)?;
        fx_core::func::relu(&flat)
    })
    .unwrap();
    let (lowered, report) = lower(&gm).unwrap();
    assert_eq!(report.fallback_partitions, 0);
    let x = Value::Tensor(Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 2, 2]));
    let y = lowered.run(&[x]).unwrap();
    assert_eq!(
        y.as_tensor().unwrap().as_f32().unwrap(),
        &[0.0, 2.0, 0.0, 4.0]
    );
}
