//! Serving parity suite: responses from the `fx_serve` dynamic batcher
//! must be **bit-identical** to solo `Executor` runs of the same
//! request, for every evaluation model, under concurrent clients —
//! **whichever execution backend** the server was built with: the
//! default, an explicit [`ExecutorBackend`], the exact-mode AoT
//! [`EngineBackend`], or whatever [`autotune`] picked.
//!
//! Bit-identity (not `allclose`) holds because dim-0 stacking of
//! contiguous row-major tensors is pure buffer concatenation and every
//! kernel computes each output row of a batch from its own input rows
//! alone, with a batch-independent reduction order (see DESIGN.md §7).
//! Coalescing therefore cannot perturb a single bit of any response,
//! and the engine's exact mode keeps every fused kernel on the same
//! accumulation order as the eager ops.

use fx::backend::{autotune, backend_by_name, EngineBackend};
use fx::prelude::*;
use fx::serve::Server;
use fx_models::{resnet50, DeepRecommender, LearningToPaintActor};
use fx_tensor::rng::{SeedableRng, StdRng};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;
const PER_CLIENT: usize = 3;

fn randn(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape, &mut rng)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_f32()
        .expect("model output is f32")
        .iter()
        .map(|f| f.to_bits())
        .collect()
}

fn solo(gm: &GraphModule, x: &Tensor) -> Tensor {
    Executor::new(gm)
        .with_threads(1)
        .run(&[Value::Tensor(x.clone())])
        .expect("solo run")
        .as_tensor()
        .expect("model output is a tensor")
        .clone()
}

/// Which execution backend the server under test is built with.
enum Served {
    /// Builder untouched: the default `ExecutorBackend` path.
    Default,
    /// An explicit backend trait object via `with_backend`.
    Backend(Arc<dyn ExecutionBackend>),
    /// `autotune` the graph, then serve its cached `ExecChoice`.
    Autotuned,
}

/// N clients hammer the server concurrently; every response must match
/// the solo run of the same input bit-for-bit.
fn assert_served_parity(gm: &GraphModule, input_shape: &[usize], label: &str) {
    assert_served_parity_with(gm, input_shape, label, Served::Default);
}

fn assert_served_parity_with(gm: &GraphModule, input_shape: &[usize], label: &str, how: Served) {
    let mut builder = Server::builder(gm.clone(), &[input_shape.to_vec()])
        .max_batch_size(2 * input_shape[0].max(1))
        .max_batch_delay(Duration::from_millis(10));
    // The default path compiles the plan exactly once at prepare time;
    // engine-backed and autotuned servers have no such invariant.
    let mut expect_plan_compiles = Some(1);
    match how {
        Served::Default => {}
        Served::Backend(backend) => {
            expect_plan_compiles = None;
            builder = builder.with_backend(backend);
        }
        Served::Autotuned => {
            expect_plan_compiles = None;
            let sample = vec![Value::Tensor(randn(input_shape, 999))];
            let choice = autotune(gm, &sample).unwrap_or_else(|e| panic!("{label}: autotune: {e}"));
            assert_eq!(
                gm.exec_choice().as_ref(),
                Some(&choice),
                "{label}: autotune caches its choice on the module"
            );
            let backend = backend_by_name(&choice.backend)
                .unwrap_or_else(|| panic!("{label}: unknown backend in {choice}"));
            builder = builder
                .with_backend(Arc::from(backend))
                .exec_config(choice.config);
        }
    }
    let server = builder
        .build()
        .unwrap_or_else(|e| panic!("{label}: server build failed: {e}"));

    let responses: Vec<(u64, Vec<u32>)> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..CLIENTS as u64)
            .map(|c| {
                let handle = server.handle();
                s.spawn(move || {
                    (0..PER_CLIENT as u64)
                        .map(|i| {
                            let seed = 1000 * c + i;
                            let x = randn(input_shape, seed);
                            let out = handle
                                .infer(vec![x])
                                .unwrap_or_else(|e| panic!("infer failed: {e}"));
                            assert_eq!(out.len(), 1, "one output tensor");
                            (seed, bits(&out[0]))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        joins.into_iter().flat_map(|j| j.join().unwrap()).collect()
    });

    for (seed, served) in &responses {
        let want = bits(&solo(gm, &randn(input_shape, *seed)));
        assert_eq!(
            served, &want,
            "{label}: served response for seed {seed} diverged from the solo executor run"
        );
    }

    let stats = server.shutdown();
    assert_eq!(stats.requests_ok, (CLIENTS * PER_CLIENT) as u64, "{label}: {stats}");
    assert_eq!(stats.requests_err, 0, "{label}: {stats}");
    if let Some(want) = expect_plan_compiles {
        assert_eq!(stats.plan_compiles, want, "{label}: plan compiled once, then shared");
    }
}

#[test]
fn resnet50_served_responses_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(50);
    let gm = symbolic_trace(&resnet50(3, 10, &mut rng)).expect("resnet50 traces");
    assert_served_parity(&gm, &[1, 3, 32, 32], "resnet50");
}

#[test]
fn deep_recommender_served_responses_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(52);
    let gm = symbolic_trace(&DeepRecommender::new(64, &mut rng)).expect("recommender traces");
    // Two-row requests: the batcher stacks multi-row requests too.
    assert_served_parity(&gm, &[2, 64], "deep_recommender");
}

#[test]
fn learning_to_paint_served_responses_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(51);
    let gm = symbolic_trace(&LearningToPaintActor::new(&mut rng)).expect("paint actor traces");
    assert_served_parity(&gm, &[1, 9, 32, 32], "learning_to_paint");
}

/// The same three models, served through every backend the trait can
/// name — an explicit executor, the exact-mode AoT engine, and the
/// autotuned choice — all bit-identical to the solo executor run.
#[test]
fn all_backends_serve_bit_identically() {
    let mut rng = StdRng::seed_from_u64(50);
    let resnet = symbolic_trace(&resnet50(3, 10, &mut rng)).expect("resnet50 traces");
    let mut rng = StdRng::seed_from_u64(52);
    let recommender = symbolic_trace(&DeepRecommender::new(64, &mut rng)).expect("recommender");
    let mut rng = StdRng::seed_from_u64(51);
    let actor = symbolic_trace(&LearningToPaintActor::new(&mut rng)).expect("paint actor");

    for (gm, shape, label) in [
        (&resnet, vec![1usize, 3, 32, 32], "resnet50"),
        (&recommender, vec![2, 64], "deep_recommender"),
        (&actor, vec![1, 9, 32, 32], "learning_to_paint"),
    ] {
        assert_served_parity_with(
            gm,
            &shape,
            &format!("{label}/executor-backend"),
            Served::Backend(Arc::new(ExecutorBackend)),
        );
        assert_served_parity_with(
            gm,
            &shape,
            &format!("{label}/engine-backend"),
            Served::Backend(Arc::new(EngineBackend::new())),
        );
        assert_served_parity_with(gm, &shape, &format!("{label}/autotuned"), Served::Autotuned);
    }
}

/// Shutdown while clients are mid-flight: every request is answered
/// (result or typed rejection), stats agree with what clients saw, and
/// nothing hangs or panics.
#[test]
fn shutdown_under_load_strands_no_request() {
    let mut rng = StdRng::seed_from_u64(52);
    let gm = symbolic_trace(&DeepRecommender::new(64, &mut rng)).expect("recommender traces");
    let server = Server::builder(gm, &[vec![1, 64]])
        .max_batch_size(4)
        .max_batch_delay(Duration::from_millis(1))
        .queue_depth(16)
        .build()
        .expect("server builds");

    let (stats, ok_seen) = std::thread::scope(|s| {
        let joins: Vec<_> = (0..6u64)
            .map(|c| {
                let handle = server.handle();
                s.spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..50u64 {
                        match handle.infer(vec![randn(&[1, 64], c * 100 + i)]) {
                            Ok(out) => {
                                assert_eq!(out[0].shape()[0], 1);
                                ok += 1;
                            }
                            Err(fx::serve::Error::Closed)
                            | Err(fx::serve::Error::QueueFull { .. }) => {}
                            Err(e) => panic!("unexpected error under shutdown: {e}"),
                        }
                    }
                    ok
                })
            })
            .collect();
        // Let some requests land, then pull the plug mid-stream.
        std::thread::sleep(Duration::from_millis(5));
        let stats = server.shutdown();
        let ok_seen: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
        (stats, ok_seen)
    });

    assert_eq!(
        stats.requests_ok, ok_seen,
        "every Ok seen by a client is counted, none stranded: {stats}"
    );
}
