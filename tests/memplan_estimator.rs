//! Cross-validation of the three memory views on the paper's
//! evaluation models:
//!
//! * the **estimator**'s analytic peak ([`peak_activation_bytes`]) —
//!   a liveness walk over shape metadata;
//! * the **memory planner**'s compile-time simulation
//!   ([`ExecPlan::mem`]) — the same liveness, plus bucketed buffer
//!   assignment;
//! * the **executor**'s measured behavior — profiled peak live bytes
//!   and buffer-pool counters over steady-state runs.
//!
//! Everything lives in ONE `#[test]` because the pool statistics are
//! process-global: concurrent test threads would pollute the deltas.
//! (Cargo runs separate test binaries sequentially, so other suites
//! can't interleave.)

use fx::passes::{cross_check_peak, infer_shapes};
use fx::prelude::*;
use fx_models::{resnet50, DeepRecommender, LearningToPaintActor};
use fx_tensor::pool;
use fx_tensor::rng::{SeedableRng, StdRng};

fn randn(shape: &[usize], seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::Tensor(Tensor::randn(shape, &mut rng))
}

fn annotated_models() -> Vec<(&'static str, GraphModule, Vec<usize>)> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(90);
    let gm = symbolic_trace(&resnet50(3, 10, &mut rng)).unwrap();
    out.push(("resnet50", gm, vec![1usize, 3, 32, 32]));
    let mut rng = StdRng::seed_from_u64(91);
    let gm = symbolic_trace(&DeepRecommender::new(64, &mut rng)).unwrap();
    out.push(("deep-recommender", gm, vec![2, 64]));
    let mut rng = StdRng::seed_from_u64(92);
    let gm = symbolic_trace(&LearningToPaintActor::new(&mut rng)).unwrap();
    out.push(("paint-actor", gm, vec![1, 9, 32, 32]));
    for (label, gm, shape) in &mut out {
        infer_shapes(gm, std::slice::from_ref(shape))
            .unwrap_or_else(|e| panic!("{label}: infer_shapes: {e}"));
    }
    out
}

#[test]
fn planner_estimator_and_measurement_agree() {
    for (label, gm, shape) in annotated_models() {
        let check = cross_check_peak(&gm).unwrap_or_else(|e| panic!("{label}: {e}"));

        // The planner's exact-size walk IS the estimator's walk: they
        // must agree to the byte, not approximately.
        assert_eq!(
            check.estimator_peak_bytes, check.planner_exact_peak_bytes,
            "{label}: estimator and planner disagree on the exact peak"
        );
        assert!(
            check.planned_reuses > 0,
            "{label}: a deep model must reuse buffers"
        );
        // Bucketing rounds each buffer up to a power of two, so the
        // steady-state pool footprint can exceed the exact peak, but by
        // less than 2x per buffer.
        assert!(
            check.planner_pool_peak_bytes < 2 * check.estimator_peak_bytes,
            "{label}: pool footprint {} not within 2x of exact peak {}",
            check.planner_pool_peak_bytes,
            check.estimator_peak_bytes
        );

        // Measured peak (planning off = classic allocation accounting)
        // never exceeds the estimate: the estimator is an upper bound.
        let x = randn(&shape, 7);
        let (_, profile) = Executor::new(&gm)
            .with_memory_planning(false)
            .run_profiled(std::slice::from_ref(&x))
            .unwrap_or_else(|e| panic!("{label}: profiled run: {e}"));
        let measured = profile.peak_live_bytes as u64;
        assert!(
            measured <= check.estimator_peak_bytes,
            "{label}: measured peak {measured} exceeds the estimate {}",
            check.estimator_peak_bytes
        );
        // ... and a tight one: within 25% + the output value the
        // runtime returns instead of keeping live.
        let out_bytes: u64 = gm
            .graph()
            .output_node()
            .and_then(|n| n.shape_meta())
            .map(|s| s.iter().product::<usize>() as u64 * 4)
            .unwrap_or(0);
        assert!(
            check.estimator_peak_bytes <= measured * 5 / 4 + out_bytes,
            "{label}: estimate {} is not tight against measured {measured}",
            check.estimator_peak_bytes
        );

        // Planned runs may only lower the peak (in-place rewrites).
        let (_, planned_profile) = Executor::new(&gm)
            .with_memory_planning(true)
            .run_profiled(std::slice::from_ref(&x))
            .unwrap_or_else(|e| panic!("{label}: planned profiled run: {e}"));
        assert!(planned_profile.memory_planning);
        assert!(
            planned_profile.peak_live_bytes as u64 <= measured,
            "{label}: planning raised the measured peak"
        );
    }

    // Steady-state allocation behavior, measured on the pool's global
    // counters (hence: same single test).
    let (label, gm, shape) = annotated_models().remove(1);
    let x = randn(&shape, 8);
    let mut ex = Executor::new(&gm).with_memory_planning(true);
    // Warm-up: compiles the plan and stocks the pool buckets.
    ex.run(std::slice::from_ref(&x)).unwrap();
    ex.run(std::slice::from_ref(&x)).unwrap();

    let base = pool::stats();
    const RUNS: u64 = 5;
    for _ in 0..RUNS {
        ex.run(std::slice::from_ref(&x)).unwrap();
    }
    let delta = pool::stats().since(&base);
    assert!(
        delta.fresh_allocs <= RUNS,
        "{label}: steady state must average <=1 fresh allocation per run, got {} over {RUNS}",
        delta.fresh_allocs
    );
    assert!(
        delta.pool_hits >= 10 * delta.fresh_allocs,
        "{label}: pool hits ({}) must dominate fresh allocations ({})",
        delta.pool_hits,
        delta.fresh_allocs
    );

    // With planning off, every kernel allocation is fresh again.
    let base = pool::stats();
    Executor::new(&gm)
        .with_memory_planning(false)
        .run(std::slice::from_ref(&x))
        .unwrap();
    let off = pool::stats().since(&base);
    assert_eq!(
        off.pool_hits, 0,
        "{label}: unplanned runs must not touch the pool"
    );
    assert!(off.fresh_allocs > 0, "{label}: unplanned runs allocate");
}
