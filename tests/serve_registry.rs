//! Multi-tenant registry suite: hot swap under sustained load must be
//! zero-downtime and version-exact, and randomized concurrent
//! register / swap / unregister / infer schedules (TorchProbe-style,
//! seeded and offline) must never hang, strand, or serve bits that no
//! registered version of the model would produce.

use fx::prelude::*;
use fx::serve::{Error as ServeError, ModelConfig, Registry};
use fx_models::{resnet50, Mlp};
use fx_tensor::rng::{Rng, SeedableRng, StdRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

fn randn(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn(shape, &mut rng)
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_f32()
        .expect("model output is f32")
        .iter()
        .map(|f| f.to_bits())
        .collect()
}

fn solo(gm: &GraphModule, x: &Tensor) -> Vec<u32> {
    bits(
        Executor::new(gm)
            .with_threads(1)
            .run(&[Value::Tensor(x.clone())])
            .expect("solo run")
            .as_tensor()
            .expect("model output is a tensor"),
    )
}

/// Swap ResNet-50's weights while 4 concurrent clients hammer the
/// registry. The acceptance bar from the paper's serving story:
///
/// * **zero downtime** — not a single request fails across the swap;
/// * **version exactness** — every response is bit-identical to a solo
///   `Executor` run of *whichever version served it* (v1 or v2, never a
///   mixture), and every request submitted after `swap` returned (old
///   version fully drained) is answered by v2.
#[test]
fn resnet50_hot_swap_under_load_is_zero_downtime_and_version_exact() {
    let mut rng = StdRng::seed_from_u64(60);
    let v1 = symbolic_trace(&resnet50(3, 10, &mut rng)).expect("resnet50 v1 traces");
    let mut rng = StdRng::seed_from_u64(61);
    let v2 = symbolic_trace(&resnet50(3, 10, &mut rng)).expect("resnet50 v2 traces");

    // A small fixed input set so the expected answers of both versions
    // can be precomputed exactly.
    const SHAPE: [usize; 4] = [1, 3, 32, 32];
    let inputs: Vec<Tensor> = (0..3u64).map(|i| randn(&SHAPE, 7000 + i)).collect();
    let want_v1: Vec<Vec<u32>> = inputs.iter().map(|x| solo(&v1, x)).collect();
    let want_v2: Vec<Vec<u32>> = inputs.iter().map(|x| solo(&v2, x)).collect();

    let registry = Registry::builder().workers(2).build().expect("registry builds");
    let handle = registry
        .register_with(
            "resnet50",
            v1,
            &[SHAPE.to_vec()],
            ModelConfig::new()
                .max_batch_size(4)
                .max_batch_delay(Duration::from_millis(2)),
        )
        .expect("resnet50 registers");

    const CLIENTS: u64 = 4;
    const PER_CLIENT: u64 = 6;
    let swapped = AtomicBool::new(false);

    std::thread::scope(|s| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let handle = handle.clone();
                let (inputs, want_v1, want_v2, swapped) = (&inputs, &want_v1, &want_v2, &swapped);
                s.spawn(move || {
                    for i in 0..PER_CLIENT {
                        let k = ((c + i) % inputs.len() as u64) as usize;
                        // Read the flag *before* submitting: if the swap
                        // had already drained by then, only v2 can serve
                        // this request.
                        let after_swap = swapped.load(Ordering::SeqCst);
                        let out = handle
                            .infer(vec![inputs[k].clone()])
                            .unwrap_or_else(|e| panic!("client {c} request {i} failed: {e}"));
                        let got = bits(&out[0]);
                        if after_swap {
                            assert_eq!(
                                got, want_v2[k],
                                "client {c} request {i}: submitted after the swap drained \
                                 but not answered by v2"
                            );
                        } else {
                            assert!(
                                got == want_v1[k] || got == want_v2[k],
                                "client {c} request {i}: response matches neither version \
                                 of the model"
                            );
                        }
                    }
                })
            })
            .collect();

        // Let the first wave land on v1, then swap mid-stream.
        std::thread::sleep(Duration::from_millis(30));
        let new_version = registry.swap("resnet50", v2).expect("hot swap succeeds");
        assert_eq!(new_version, 2);
        swapped.store(true, Ordering::SeqCst);

        for c in clients {
            c.join().expect("client thread survives the swap");
        }
    });

    let snap = registry.shutdown();
    let model = &snap.models[0];
    assert_eq!(model.version, 2);
    assert_eq!(model.stats.swaps, 1);
    assert_eq!(
        model.stats.requests_ok,
        CLIENTS * PER_CLIENT,
        "zero downtime: every request answered Ok across the swap"
    );
    assert_eq!(model.stats.requests_err, 0);
}

// ---------------------------------------------------------------------
// TorchProbe-style schedule fuzz: randomized concurrent lifecycles.
// ---------------------------------------------------------------------

const NAMES: [&str; 3] = ["m0", "m1", "m2"];
const IN: usize = 8;

fn mlp(seed: u64) -> GraphModule {
    let mut rng = StdRng::seed_from_u64(seed);
    symbolic_trace(&Mlp::new(&[IN, 12, 4], &mut rng)).expect("mlp traces")
}

/// Every graph ever registered or swapped under each name, appended
/// *before* the registry call — so by the time any response could have
/// come from a version, that version is already in the superset.
type VersionLog = Mutex<HashMap<&'static str, Vec<GraphModule>>>;

fn fuzz_cases() -> u64 {
    std::env::var("FX_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// A seeded sweep of concurrent register / swap / unregister / infer
/// schedules across ≥2 models sharing one worker pool. Invariants:
///
/// * nothing panics, hangs, or strands a client;
/// * every `Ok` response is bit-identical to a solo run of **some**
///   version ever registered under that name;
/// * every `Err` is one of the typed lifecycle errors;
/// * the final snapshot's aggregate `requests_ok` equals the number of
///   `Ok`s clients observed.
#[test]
fn fuzzed_concurrent_schedules_keep_registry_invariants() {
    for case in 0..fuzz_cases() {
        let seed = 0xC0FFEE ^ (case * 0x9E37_79B9);
        fuzz_one_schedule(case, seed);
    }
}

fn fuzz_one_schedule(case: u64, seed: u64) {
    let registry = Registry::builder().workers(2).build().expect("registry builds");
    let versions: VersionLog = Mutex::new(HashMap::new());

    // Seed two models so infer has something to hit from the start.
    for (i, name) in NAMES.iter().take(2).enumerate() {
        let gm = mlp(seed + i as u64);
        versions.lock().unwrap().entry(name).or_default().push(gm.clone());
        registry
            .register(name, gm, &[vec![1, IN]])
            .expect("seed registration");
    }

    const THREADS: u64 = 3;
    const OPS: u64 = 25;
    let total_ok: u64 = std::thread::scope(|s| {
        let joins: Vec<_> = (0..THREADS)
            .map(|t| {
                let registry = &registry;
                let versions = &versions;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (0xA5A5 + t));
                    let mut ok = 0u64;
                    for op in 0..OPS {
                        let name = NAMES[(rng.next_u64() % NAMES.len() as u64) as usize];
                        let op_seed = seed ^ (t << 32) ^ op;
                        match rng.next_u64() % 10 {
                            // Mostly infer: the datapath under churn.
                            0..=5 => match registry.handle(name) {
                                Ok(h) => match h.infer(vec![randn(&[1, IN], op_seed)]) {
                                    Ok(out) => {
                                        let got = bits(&out[0]);
                                        let x = randn(&[1, IN], op_seed);
                                        let vs = versions.lock().unwrap();
                                        let served_by_known = vs
                                            .get(name)
                                            .map(|gs| gs.iter().any(|g| solo(g, &x) == got))
                                            .unwrap_or(false);
                                        assert!(
                                            served_by_known,
                                            "case {case} t{t} op{op}: response for `{name}` \
                                             matches no version ever registered"
                                        );
                                        ok += 1;
                                    }
                                    // Raced an unregister/shutdown or a
                                    // full queue: typed, never a hang.
                                    Err(ServeError::Closed)
                                    | Err(ServeError::QueueFull { .. }) => {}
                                    Err(e) => {
                                        panic!("case {case} t{t} op{op}: unexpected infer error: {e}")
                                    }
                                },
                                Err(ServeError::UnknownModel(_)) => {}
                                Err(e) => {
                                    panic!("case {case} t{t} op{op}: unexpected handle error: {e}")
                                }
                            },
                            6..=7 => {
                                let gm = mlp(op_seed);
                                versions.lock().unwrap().entry(name).or_default().push(gm.clone());
                                match registry.register(name, gm, &[vec![1, IN]]) {
                                    Ok(_) | Err(ServeError::AlreadyRegistered(_)) => {}
                                    Err(e) => panic!(
                                        "case {case} t{t} op{op}: unexpected register error: {e}"
                                    ),
                                }
                            }
                            8 => {
                                let gm = mlp(op_seed);
                                versions.lock().unwrap().entry(name).or_default().push(gm.clone());
                                match registry.swap(name, gm) {
                                    Ok(_) | Err(ServeError::UnknownModel(_)) => {}
                                    Err(e) => panic!(
                                        "case {case} t{t} op{op}: unexpected swap error: {e}"
                                    ),
                                }
                            }
                            _ => match registry.unregister(name) {
                                Ok(_) | Err(ServeError::UnknownModel(_)) => {}
                                Err(e) => panic!(
                                    "case {case} t{t} op{op}: unexpected unregister error: {e}"
                                ),
                            },
                        }
                    }
                    ok
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().expect("fuzz thread survives"))
            .sum()
    });

    let snap = registry.shutdown();
    assert_eq!(
        snap.aggregate.requests_ok, total_ok,
        "case {case}: aggregate stats must count exactly the Oks clients observed"
    );
    assert_eq!(
        snap.aggregate.requests_err, 0,
        "case {case}: graceful lifecycles never fail an accepted request"
    );
}
