//! Golden end-to-end tests for the paper's Figures 1–4: exact IR dumps,
//! exact generated code, the activation-replacement transform, the
//! compose-and-retrace flow, and the §5.3 data-dependent-control-flow
//! error.

use fx::prelude::*;
use fx_core::ArcModule;
use std::any::Any;
use std::sync::Arc;

fn figure1_traced() -> GraphModule {
    // def my_func(x): return torch.relu(x).neg()
    symbolic_trace_fn(1, |xs| func::relu(&xs[0])?.neg()).expect("trace")
}

#[test]
fn figure1_ir_dump_matches_paper() {
    let traced = figure1_traced();
    let expected = "\
x = placeholder target=x args=()
relu = call_function target=relu args=(x,)
neg = call_method target=neg args=(relu,)
output = output target=output args=(neg,)
";
    assert_eq!(traced.graph().to_string(), expected);
}

#[test]
fn figure1_generated_code_matches_paper() {
    let traced = figure1_traced();
    let expected = "\
def forward(self, x):
    relu = torch.relu(x);  x = None
    neg = relu.neg();  relu = None
    return neg
";
    assert_eq!(traced.code(), expected);
}

#[test]
fn figure1_traced_executes_like_eager() {
    let traced = figure1_traced();
    let x = Value::Tensor(Tensor::from_vec(vec![-3.0, 0.0, 5.0], &[3]));
    let y = traced.run(&[x]).unwrap();
    assert_eq!(y.as_tensor().unwrap().as_f32().unwrap(), &[0.0, 0.0, -5.0]);
}

/// Figure 2's transform, verbatim logic: swap one activation for
/// another by retargeting nodes.
fn replace_activation(gm: &mut GraphModule, from: &str, to: &str) -> usize {
    let ids: Vec<_> = gm
        .graph()
        .nodes()
        .filter(|n| n.op() == Opcode::CallFunction && n.target() == from)
        .map(|n| n.id())
        .collect();
    for id in &ids {
        gm.graph_mut().set_target(*id, to).unwrap();
    }
    gm.recompile().unwrap();
    ids.len()
}

#[test]
fn figure2_activation_swap() {
    let mut traced = figure1_traced();
    assert_eq!(replace_activation(&mut traced, "relu", "gelu"), 1);
    assert!(traced.code().contains("torch.gelu(x)"));
    assert!(!traced.code().contains("torch.relu"));
    // gelu(-1).neg() != relu(-1).neg(): semantics actually changed.
    let x = Value::Tensor(Tensor::from_vec(vec![-1.0], &[1]));
    let y = traced.run(&[x]).unwrap();
    let out = y.as_tensor().unwrap().as_f32().unwrap()[0];
    assert!(out > 0.0 && out < 0.2, "gelu(-1) ~ -0.158, negated: {out}");
}

#[derive(Debug)]
struct SampleModule {
    act: ArcModule,
}

impl Module for SampleModule {
    fn forward(&self, xs: &[Value]) -> fx_core::Result<Value> {
        let shifted = func::add(&xs[0], &Value::Float(std::f64::consts::PI))?;
        self.act.call(&[shifted])
    }
    fn type_name(&self) -> &'static str {
        "SampleModule"
    }
    fn children(&self) -> Vec<(String, ArcModule)> {
        vec![("act".to_string(), self.act.clone())]
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn figure3_compose_and_retrace_inlines_transformed_code() {
    let mut inner = figure1_traced();
    replace_activation(&mut inner, "relu", "gelu");
    let sm = SampleModule {
        act: Arc::new(inner),
    };
    let retraced = symbolic_trace(&sm).expect("re-trace");
    let code = retraced.code();
    // The paper's Figure 3 output: add, then the *inlined* gelu and neg.
    assert!(code.contains("add = x + 3.141592653589793"), "{code}");
    assert!(code.contains("torch.gelu(add)"), "{code}");
    assert!(code.contains(".neg()"), "{code}");
    // No call_module remains — the GraphModule was traced through.
    assert!(
        retraced.graph().nodes().all(|n| n.op() != Opcode::CallModule),
        "{code}"
    );

    // And it computes gelu(x + pi).neg().
    let x = Value::Tensor(Tensor::from_vec(vec![0.0], &[1]));
    let y = retraced.run(&[x]).unwrap();
    let expect = {
        let v = std::f32::consts::PI;
        -(0.5 * v * (1.0 + (0.797_884_6 * (v + 0.044_715 * v * v * v)).tanh()))
    };
    assert!((y.as_tensor().unwrap().as_f32().unwrap()[0] - expect).abs() < 1e-5);
}

/// §5.3 / Figure 4 territory: symbolic tracing cannot observe
/// data-dependent control flow and must error with a pointer at the
/// offending value rather than silently specialize.
#[test]
fn data_dependent_control_flow_errors_loudly() {
    let result = symbolic_trace_fn(1, |xs| {
        let s = xs[0].size()?; // recorded as a node; still a proxy
        let first = func::getitem(&s, 0)?; // proxy
        // "if first > 0 { .. }" requires a concrete bool:
        match first.try_int() {
            Ok(_) => panic!("proxy must not convert to a concrete int"),
            Err(e) => Err(e),
        }
    });
    let err = result.unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("getitem"), "error should name the node: {msg}");
    assert!(msg.contains("§5.3") || msg.contains("specialize"), "{msg}");
}

/// §5.1: tracing *through* non-input-dependent control flow (the loop
/// inside Sequential) eliminates it from the IR.
#[test]
fn sequential_loop_is_unrolled() {
    use fx::nn::{Linear, ReLU, Sequential};
    use fx_tensor::rng::{SeedableRng, StdRng};
    let mut rng = StdRng::seed_from_u64(0);
    let seq = Sequential::new(vec![
        Arc::new(Linear::new(4, 4, &mut rng)),
        Arc::new(ReLU),
        Arc::new(Linear::new(4, 4, &mut rng)),
        Arc::new(ReLU),
    ]);
    let traced = symbolic_trace(&seq).unwrap();
    // Flat basic-block program: 4 call_modules, no loop structure at all.
    let calls = traced
        .graph()
        .nodes()
        .filter(|n| n.op() == Opcode::CallModule)
        .count();
    assert_eq!(calls, 4);
    traced.graph().lint().unwrap();
}
