//! Differential fuzz harness (DESIGN.md "validation layer").
//!
//! A seeded generator builds random-but-valid models — conv stacks,
//! MLPs, and hand-edited function graphs — and checks, per case:
//!
//! * every execution path is **bit-identical**: `gm.run` (sequential)
//!   vs the parallel [`Executor`] at 1/2/8 threads vs both
//!   [`ExecutionBackend`]s through the trait object (the prepared
//!   executor and the exact-mode AoT engine) vs the codegen round-trip
//!   (print → parse → rebuild → run);
//! * mutating passes are **idempotent**: running fuse / CSE / constant
//!   folding a second time changes nothing (0 rewrites, same bits);
//! * the graph **validates** ([`GraphModule::validate`]) after tracing
//!   and after every transform.
//!
//! Everything is driven by the in-repo SplitMix64 [`StdRng`], so the
//! suite is deterministic and offline. A failing assertion prints
//! `case N (seed 0x…)`; reproduce it by re-running the test — the seed
//! for case N is always `FUZZ_SEED_BASE + N`, independent of the other
//! cases. Set `FX_FUZZ_CASES` to shrink or grow the sweep (the tier-1
//! smoke run uses a small slice; the default is 64).

use fx::passes::{
    eliminate_common_subexpressions, fold_constants, fuse_conv_bn, infer_shapes,
};
use fx::prelude::*;
use fx_core::Arg;
use fx_models::Mlp;
use fx_nn::{
    AvgPool2d, BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential,
};
use fx_tensor::rng::{Rng, SeedableRng, StdRng};
use std::sync::Arc;

const FUZZ_SEED_BASE: u64 = 0x5EED_0000;

fn case_count() -> u64 {
    std::env::var("FX_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn rand_value(shape: &[usize], seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::Tensor(Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng))
}

fn as_bits(v: &Value) -> Vec<u32> {
    v.as_tensor()
        .expect("fuzz model output is a tensor")
        .as_f32()
        .expect("fuzz model output is f32")
        .iter()
        .map(|f| f.to_bits())
        .collect()
}

/// Print → parse → rebuild with the same parameters attached.
fn round_trip(gm: &GraphModule, label: &str) -> GraphModule {
    let text = gm.graph().to_string();
    let parsed = fx::core::parse_graph(&text)
        .unwrap_or_else(|e| panic!("{label}: printed graph must reparse: {e}"));
    let (_, modules, attrs, input_names) = gm.clone().into_parts();
    GraphModule::new(parsed, modules, attrs, input_names)
        .unwrap_or_else(|e| panic!("{label}: reparsed graph must lint: {e}"))
}

/// The differential core: all execution paths agree bit-for-bit, and
/// the module validates. Returns the reference bits.
fn check_all_paths(gm: &GraphModule, inputs: &[Value], label: &str) -> Vec<u32> {
    gm.validate()
        .unwrap_or_else(|e| panic!("{label}: validate: {e}"));
    let reference = as_bits(
        &gm.run(inputs)
            .unwrap_or_else(|e| panic!("{label}: sequential run: {e}")),
    );
    for planning in [false, true] {
        for threads in [1usize, 2, 8] {
            let out = Executor::new(gm)
                .with_memory_planning(planning)
                .with_threads(threads)
                .run(inputs)
                .unwrap_or_else(|e| {
                    panic!("{label}: executor({threads}, memplan={planning}): {e}")
                });
            assert_eq!(
                reference,
                as_bits(&out),
                "{label}: {threads}-thread executor (memplan={planning}) diverged"
            );
        }
    }
    // Both execution backends through the trait object. The engine
    // backend falls back to a prepared executor on graphs it cannot
    // compile, so the sweep is total over whatever the fuzzer built.
    let backends: [Box<dyn ExecutionBackend>; 2] = [
        Box::new(ExecutorBackend),
        Box::new(fx::backend::EngineBackend::new()),
    ];
    for backend in backends {
        let out = backend
            .prepare(gm)
            .and_then(|p| p.run(inputs))
            .unwrap_or_else(|e| panic!("{label}: backend {}: {e}", backend.name()));
        assert_eq!(
            reference,
            as_bits(&out),
            "{label}: backend {} diverged",
            backend.name()
        );
    }
    let rt = round_trip(gm, label);
    let out = rt
        .run(inputs)
        .unwrap_or_else(|e| panic!("{label}: round-trip run: {e}"));
    assert_eq!(reference, as_bits(&out), "{label}: codegen round-trip diverged");
    reference
}

/// Run a mutating pass twice; the second application must be a no-op
/// (0 rewrites) and the output must not move by a single bit.
fn check_idempotent(
    gm: &mut GraphModule,
    inputs: &[Value],
    label: &str,
    pass: fn(&mut GraphModule) -> fx_core::Result<usize>,
) -> Vec<u32> {
    pass(gm).unwrap_or_else(|e| panic!("{label}: first application: {e}"));
    let once = check_all_paths(gm, inputs, label);
    let second = pass(gm).unwrap_or_else(|e| panic!("{label}: second application: {e}"));
    assert_eq!(second, 0, "{label}: second application must rewrite nothing");
    let twice = check_all_paths(gm, inputs, &format!("{label} (x2)"));
    assert_eq!(once, twice, "{label}: second application changed the output");
    once
}

/// Family 1: a random conv stack. Shapes are tracked during generation
/// so every layer is valid by construction: Conv2d (kernel capped at
/// the current spatial extent), optional BatchNorm2d + ReLU, an
/// occasional 2×2 pool when it fits, then Flatten + Linear.
fn gen_conv_stack(rng: &mut StdRng) -> (Sequential, Vec<usize>) {
    let batch = rng.gen_range(1usize..3);
    let mut c = rng.gen_range(1usize..4);
    let mut h = rng.gen_range(6usize..13);
    let mut w = rng.gen_range(6usize..13);
    let input_shape = vec![batch, c, h, w];

    let mut layers: Vec<fx_core::ArcModule> = Vec::new();
    for _ in 0..rng.gen_range(1usize..4) {
        let out_c = rng.gen_range(1usize..6);
        let k = rng.gen_range(1usize..3.min(h).min(w) + 1);
        layers.push(Arc::new(Conv2d::new(c, out_c, (k, k), rng)));
        c = out_c;
        h = h - k + 1;
        w = w - k + 1;
        if rng.gen_range(0u64..2) == 0 {
            layers.push(Arc::new(BatchNorm2d::new(c)));
        }
        layers.push(Arc::new(ReLU));
        if h >= 2 && w >= 2 && rng.gen_range(0u64..2) == 0 {
            if rng.gen_range(0u64..2) == 0 {
                layers.push(Arc::new(MaxPool2d::new((2, 2))));
            } else {
                layers.push(Arc::new(AvgPool2d::new((2, 2))));
            }
            h = (h - 2) / 2 + 1;
            w = (w - 2) / 2 + 1;
        }
    }
    layers.push(Arc::new(Flatten::default()));
    let features = c * h * w;
    layers.push(Arc::new(Linear::new(features, rng.gen_range(1usize..6), rng)));
    (Sequential::new(layers), input_shape)
}

/// Family 3: a traced function graph (unary chains + `add` + `cat`)
/// followed by a random sequence of *valid* graph edits — insertions,
/// retargets, dead-node erasures — exercising the mutation API the
/// passes are built on.
fn gen_edited_function_graph(rng: &mut StdRng) -> (GraphModule, Vec<usize>) {
    const UNARY: [&str; 5] = ["relu", "sigmoid", "tanh", "abs", "neg"];
    let n = rng.gen_range(2usize..9);
    let ops: Vec<u64> = (0..rng.gen_range(1usize..7)).map(|_| rng.next_u64()).collect();
    let use_cat = rng.gen_range(0u64..2) == 0;

    let mut gm = symbolic_trace_fn(1, |xs| {
        let mut a = func::call(UNARY[0], std::slice::from_ref(&xs[0]))?;
        let mut b = xs[0].clone();
        for &o in &ops {
            let pick = UNARY[(o % UNARY.len() as u64) as usize];
            if o % 2 == 0 {
                a = func::call(pick, std::slice::from_ref(&a))?;
            } else {
                b = func::call(pick, std::slice::from_ref(&b))?;
            }
        }
        if use_cat {
            func::cat(&[a, b], 0)
        } else {
            func::add(&a, &b)
        }
    })
    .expect("function family traces");

    // Random valid edits (mirrors the proptests edit family).
    for _ in 0..rng.gen_range(0usize..6) {
        let kind = rng.gen_range(0u64..3);
        let pick = rng.gen_range(0usize..16);
        let ids = gm.graph().node_ids();
        let graph = gm.graph_mut();
        match kind {
            0 => {
                let ph = graph.placeholders()[0];
                let target = ids[pick % ids.len()];
                if graph.node(target).op() != Opcode::Placeholder {
                    let mut g = graph.inserting_before(target);
                    g.call_function(UNARY[pick % UNARY.len()], vec![Arg::Node(ph)], vec![]);
                }
            }
            1 => {
                let candidates: Vec<_> = ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let n = graph.node(id);
                        n.op() == Opcode::CallFunction && UNARY.contains(&n.target())
                    })
                    .collect();
                if !candidates.is_empty() {
                    graph
                        .set_target(
                            candidates[pick % candidates.len()],
                            UNARY[(pick + 1) % UNARY.len()],
                        )
                        .unwrap();
                }
            }
            _ => {
                let dead: Vec<_> = ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let n = graph.node(id);
                        n.op() == Opcode::CallFunction && graph.users(id).is_empty()
                    })
                    .collect();
                if !dead.is_empty() {
                    graph.erase_node(dead[pick % dead.len()]).unwrap();
                }
            }
        }
    }
    gm.graph_mut().eliminate_dead_code();
    gm.recompile().expect("edited graph recompiles");
    (gm, vec![n])
}

/// The sweep: every case generates one model from a seed-chosen family
/// and pushes it through the full differential battery.
#[test]
fn differential_fuzz_sweep() {
    for case in 0..case_count() {
        let seed = FUZZ_SEED_BASE + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let label = format!("case {case} (seed {seed:#x})");

        let (mut gm, input_shape) = match case % 3 {
            0 => {
                let (model, shape) = gen_conv_stack(&mut rng);
                let gm = symbolic_trace(&model)
                    .unwrap_or_else(|e| panic!("{label}: trace: {e}"));
                (gm, shape)
            }
            1 => {
                let n_widths = rng.gen_range(2usize..5);
                let widths: Vec<usize> =
                    (0..n_widths).map(|_| rng.gen_range(1usize..16)).collect();
                let batch = rng.gen_range(1usize..4);
                let mlp = Mlp::new(&widths, &mut rng);
                let gm = symbolic_trace(&mlp)
                    .unwrap_or_else(|e| panic!("{label}: trace: {e}"));
                (gm, vec![batch, widths[0]])
            }
            _ => gen_edited_function_graph(&mut rng),
        };

        let x = rand_value(&input_shape, seed ^ 0x5EED);
        let inputs = std::slice::from_ref(&x);
        let before = check_all_paths(&gm, inputs, &format!("{label}: traced"));

        // Conv–BN fusion is numerics-changing, so it gets its own
        // before/after reference; CSE and constant folding must each
        // preserve bits exactly relative to their own input.
        let fused =
            check_idempotent(&mut gm, inputs, &format!("{label}: fuse"), fuse_conv_bn);
        if case % 3 != 0 {
            // Non-conv families have nothing to fuse: bits are untouched.
            assert_eq!(before, fused, "{label}: fuse must be a no-op here");
        }
        let pre_cse = fused;
        let post_cse = check_idempotent(
            &mut gm,
            inputs,
            &format!("{label}: cse"),
            eliminate_common_subexpressions,
        );
        assert_eq!(pre_cse, post_cse, "{label}: CSE changed observable bits");
        let post_fold = check_idempotent(
            &mut gm,
            inputs,
            &format!("{label}: constfold"),
            fold_constants,
        );
        assert_eq!(post_cse, post_fold, "{label}: folding changed observable bits");
    }
}

/// Quantized sweep: random conv stacks and MLPs pushed through PTQ
/// (fuse → calibrate → convert), then checked on every execution path.
///
/// Invariants (the PR-7 f32 guarantees, extended to int8):
/// * the converted graph's output is **bit-identical** across
///   {memplan off, on} × {1, 2, 8 threads} × both execution backends —
///   the int8 kernels accumulate exactly in i32 and share one
///   requantization epilogue, so nothing in the schedule may move a
///   byte;
/// * **batch position is invisible**: each row of a stacked batch
///   equals its solo run bit-for-bit (quantized linear/conv lower the
///   whole batch as one GEMM — rows must never see their neighbors);
/// * int8 vs f32 is compared against the documented quantization
///   tolerance (SQNR, not bitwise — DESIGN.md §5e).
///
/// The SIMD axis ({FX_SIMD=0,1}) is once-read per process, so it is
/// swept two ways: in-process engine-vs-engine tests inside
/// `fx_tensor::quant`, and cross-process by `scripts/verify.sh`, which
/// runs this very sweep under both modes and both FX_MEMPLAN settings.
#[test]
fn quantized_differential_fuzz_sweep() {
    use fx::passes::batch_polymorphic;

    // PTQ per case (prepare + calibrate + convert) is heavier than the
    // f32 sweep; a smaller slice still crosses both families.
    let cases = case_count().min(16);
    for case in 0..cases {
        let seed = FUZZ_SEED_BASE + 0x9_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let label = format!("quant case {case} (seed {seed:#x})");

        let (mut gm, mut input_shape) = if case % 2 == 0 {
            let (model, shape) = gen_conv_stack(&mut rng);
            let gm =
                symbolic_trace(&model).unwrap_or_else(|e| panic!("{label}: trace: {e}"));
            (gm, shape)
        } else {
            let n_widths = rng.gen_range(2usize..5);
            let widths: Vec<usize> =
                (0..n_widths).map(|_| rng.gen_range(2usize..16)).collect();
            let mlp = Mlp::new(&widths, &mut rng);
            let gm =
                symbolic_trace(&mlp).unwrap_or_else(|e| panic!("{label}: trace: {e}"));
            let batch = rng.gen_range(1usize..4);
            (gm, vec![batch, widths[0]])
        };
        fuse_conv_bn(&mut gm).unwrap_or_else(|e| panic!("{label}: fuse: {e}"));

        let calibration: Vec<Vec<Value>> = (0..3)
            .map(|i| vec![rand_value(&input_shape, seed ^ (0xCA1 + i))])
            .collect();
        let qgm = fx::quant::quantize_ptq(&gm, &calibration, &fx::quant::QConfig::default())
            .unwrap_or_else(|e| panic!("{label}: quantize_ptq: {e}"));

        let x = rand_value(&input_shape, seed ^ 0xABCD);
        let inputs = std::slice::from_ref(&x);

        // Bit-identity across memplan × threads × backends (the same
        // battery the f32 sweep runs, on the converted graph).
        let reference = check_all_paths(&qgm, inputs, &format!("{label}: converted"));

        // Int8 vs f32 against the documented quantization tolerance.
        let y_f32 = gm
            .run(inputs)
            .unwrap_or_else(|e| panic!("{label}: f32 reference: {e}"));
        let (rf, rq) = (
            y_f32.as_tensor().unwrap().as_f32().unwrap(),
            reference.iter().map(|&b| f32::from_bits(b)).collect::<Vec<_>>(),
        );
        let signal: f64 = rf.iter().map(|&v| (v as f64).powi(2)).sum();
        let noise: f64 = rf
            .iter()
            .zip(&rq)
            .map(|(&a, &b)| ((a - b) as f64).powi(2))
            .sum();
        // Fuzz-scale models (layers as narrow as 2 units, 3 calibration
        // batches) quantize far worse than real networks; the bench
        // suite holds real models to > 20 dB, the fuzz gate here only
        // catches catastrophic breakage (sign flips, wrong zero point).
        if signal > 1e-6 {
            let sqnr_db = 10.0 * (signal / noise.max(1e-12)).log10();
            assert!(
                sqnr_db > 5.0,
                "{label}: int8 drifted past the documented tolerance \
                 (SQNR {sqnr_db:.1} dB <= 5 dB)"
            );
        }

        // Batch-position invariance: admit the graph, then check each
        // row of a stacked batch against its solo run, bit for bit.
        input_shape[0] = 1;
        batch_polymorphic(&qgm, &[input_shape.clone()])
            .unwrap_or_else(|e| panic!("{label}: admission: {e}"));
        let rows: Vec<Tensor> = (0..3)
            .map(|i| {
                rand_value(&input_shape, seed ^ (0xB000 + i))
                    .as_tensor()
                    .unwrap()
                    .clone()
            })
            .collect();
        let solo: Vec<Vec<u32>> = rows
            .iter()
            .map(|r| {
                as_bits(
                    &qgm.run(&[Value::Tensor(r.clone())])
                        .unwrap_or_else(|e| panic!("{label}: solo run: {e}")),
                )
            })
            .collect();
        let refs: Vec<&Tensor> = rows.iter().collect();
        let stacked = fx_tensor::ops::stack_batch(&refs)
            .unwrap_or_else(|e| panic!("{label}: stack: {e}"));
        let batched = as_bits(
            &qgm.run(&[Value::Tensor(stacked)])
                .unwrap_or_else(|e| panic!("{label}: batched run: {e}")),
        );
        let per_row = batched.len() / 3;
        for (i, s) in solo.iter().enumerate() {
            assert_eq!(
                &batched[i * per_row..(i + 1) * per_row],
                &s[..],
                "{label}: row {i} changed bits inside the batch"
            );
        }
    }
}

/// Regression sweep: inputs that used to crash the stack must now fail
/// with typed errors on every execution path — no panics, no poisoned
/// worker pools, no usize underflow.
#[test]
fn previously_panicking_inputs_fail_cleanly() {
    // (1) Oversized pool window: a 9×9 max-pool over a 4×4 image. This
    // underflowed in shape inference *and* in the runtime kernel.
    let mut g = Graph::new();
    let x = g.placeholder("x");
    let pooled = g.call_function(
        "max_pool2d",
        vec![
            Arg::Node(x),
            Arg::Tuple(vec![Arg::Int(9), Arg::Int(9)]),
            Arg::Tuple(vec![Arg::Int(1), Arg::Int(1)]),
            Arg::Tuple(vec![Arg::Int(0), Arg::Int(0)]),
        ],
        vec![],
    );
    g.output(Arg::Node(pooled));
    let mut gm = GraphModule::new(g, Default::default(), Default::default(), vec![
        "x".to_string(),
    ])
    .unwrap();

    let err = infer_shapes(&mut gm, &[vec![1, 3, 4, 4]]).unwrap_err();
    assert!(
        err.to_string().contains("does not fit"),
        "shape inference names the misfit: {err}"
    );
    let x = rand_value(&[1, 3, 4, 4], 7);
    for threads in [1usize, 2, 8] {
        let err = Executor::new(&gm)
            .with_threads(threads)
            .run(std::slice::from_ref(&x))
            .unwrap_err();
        assert!(
            err.to_string().contains("does not fit"),
            "{threads}-thread execution errors in kind: {err}"
        );
    }

    // (2) A custom op whose kernel panics outright: contained on every
    // path, error names the node, and the pool stays reusable.
    fn bomb(_i: &fx_core::dispatch::Inputs<'_>) -> fx_core::Result<Value> {
        panic!("fuzz bomb");
    }
    fx_core::dispatch::register_function("fuzz::bomb", bomb);
    let mut g = Graph::new();
    let x = g.placeholder("x");
    let b = g.call_function("fuzz::bomb", vec![Arg::Node(x)], vec![]);
    let r = g.call_function("relu", vec![Arg::Node(x)], vec![]);
    let a = g.call_function("add", vec![Arg::Node(b), Arg::Node(r)], vec![]);
    g.output(Arg::Node(a));
    let gm = GraphModule::new(g, Default::default(), Default::default(), vec![
        "x".to_string(),
    ])
    .unwrap();
    let x = rand_value(&[8], 8);
    for threads in [1usize, 2, 8] {
        let err = Executor::new(&gm)
            .with_threads(threads)
            .run(std::slice::from_ref(&x))
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("fuzz__bomb"), "names the node ({threads}t): {msg}");
        assert!(msg.contains("panic"), "says it panicked ({threads}t): {msg}");
    }
}
