//! Randomized property tests over the whole stack: randomized models
//! and graph-edit sequences checking the invariants DESIGN.md commits
//! to.
//!
//! Each property runs a fixed number of cases drawn from the in-repo
//! deterministic [`StdRng`] (SplitMix64), so failures reproduce exactly
//! from the printed case seed — no external property-testing framework
//! and no shrinking, but the generators are kept small enough that a
//! failing case is directly debuggable.

use fx::backend::compile;
use fx::passes::{
    eliminate_common_subexpressions, infer_shapes, peak_activation_bytes, shape_prop,
};
use fx::prelude::*;
use fx_core::Arg;
use fx_models::Mlp;
use fx_tensor::rng::{Rng, SeedableRng, StdRng};

const CASES: u64 = 24;

fn value(shape: &[usize], seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::Tensor(Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng))
}

fn random_widths(rng: &mut StdRng, n: std::ops::Range<usize>, w: std::ops::Range<usize>) -> Vec<usize> {
    let len = rng.gen_range(n);
    (0..len).map(|_| rng.gen_range(w.clone())).collect()
}

/// Eager forward == traced-graph execution == compiled engine, for
/// random MLP architectures and batch sizes.
#[test]
fn eager_interpreter_engine_agree() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA0 + case);
        let widths = random_widths(&mut rng, 2..5, 1..24);
        let batch = rng.gen_range(1usize..5);
        let seed = rng.next_u64();

        let mut mrng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&widths, &mut mrng);
        let gm = symbolic_trace(&mlp).unwrap();
        let x = value(&[batch, widths[0]], seed ^ 0x5eed);

        let eager = mlp.forward(std::slice::from_ref(&x)).unwrap();
        let interp = gm.run(std::slice::from_ref(&x)).unwrap();
        assert!(
            eager
                .as_tensor()
                .unwrap()
                .allclose(interp.as_tensor().unwrap(), 1e-4),
            "case {case}: eager vs traced"
        );

        let engine = compile(&gm).unwrap();
        let out = engine.run(&[x.as_tensor().unwrap().clone()]).unwrap();
        assert!(
            out.allclose(eager.as_tensor().unwrap(), 1e-4),
            "case {case}: eager vs engine"
        );
    }
}

/// Abstract shape inference agrees with concrete shape propagation on
/// random MLPs.
#[test]
fn abstract_shapes_match_concrete() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xB0 + case);
        let widths = random_widths(&mut rng, 2..6, 1..16);
        let batch = rng.gen_range(1usize..4);
        let seed = rng.next_u64();

        let mut mrng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&widths, &mut mrng);
        let mut gm_c = symbolic_trace(&mlp).unwrap();
        let mut gm_a = gm_c.clone();
        shape_prop(&mut gm_c, &[value(&[batch, widths[0]], seed)]).unwrap();
        let inferred = infer_shapes(&mut gm_a, &[vec![batch, widths[0]]]).unwrap();
        for node in gm_c.graph().nodes() {
            if let Some(s) = node.shape_meta() {
                assert_eq!(
                    inferred.get(node.name()).map(|v| v.as_slice()),
                    Some(s),
                    "case {case}: node `{}`",
                    node.name()
                );
            }
        }
    }
}

/// Random chains of unary ops: graph surgery (CSE on a duplicated
/// chain) never changes observable behaviour, and lint stays green.
#[test]
fn cse_preserves_random_unary_chains() {
    const NAMES: [&str; 5] = ["relu", "sigmoid", "tanh", "abs", "exp"];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0 + case);
        let n_ops = rng.gen_range(1usize..6);
        let ops: Vec<usize> = (0..n_ops).map(|_| rng.gen_range(0usize..5)).collect();
        let seed = rng.next_u64();

        let build = |xs: &[Value]| -> fx_core::Result<Value> {
            let mut a = xs[0].clone();
            let mut b = xs[0].clone();
            for &o in &ops {
                a = func::call(NAMES[o], &[a])?;
                b = func::call(NAMES[o], &[b])?; // duplicate chain
            }
            func::add(&a, &b)
        };
        let mut gm = symbolic_trace_fn(1, build).unwrap();
        let x = value(&[7], seed);
        let before = gm.run(std::slice::from_ref(&x)).unwrap();
        let removed = eliminate_common_subexpressions(&mut gm).unwrap();
        assert_eq!(removed, ops.len(), "case {case}: whole duplicate chain merges");
        gm.graph().lint().unwrap();
        let after = gm.run(std::slice::from_ref(&x)).unwrap();
        assert_eq!(before, after, "case {case}");
    }
}

/// Random insert/retarget/erase edit sequences keep the graph
/// lint-clean, and DCE never breaks executability.
#[test]
fn graph_edits_preserve_invariants() {
    const UNARY: [&str; 4] = ["relu", "sigmoid", "tanh", "abs"];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD0 + case);
        let n_edits = rng.gen_range(0usize..12);
        let edits: Vec<(usize, usize)> = (0..n_edits)
            .map(|_| (rng.gen_range(0usize..3), rng.gen_range(0usize..8)))
            .collect();
        let seed = rng.next_u64();

        let mut gm = symbolic_trace_fn(1, |xs| {
            let a = func::relu(&xs[0])?;
            let b = func::tanh(&a)?;
            func::add(&a, &b)
        })
        .unwrap();
        for (kind, pick) in edits {
            let ids = gm.graph().node_ids();
            let graph = gm.graph_mut();
            match kind {
                // Insert a unary op before some node, consuming the
                // placeholder (always legal).
                0 => {
                    let ph = graph.placeholders()[0];
                    let target = ids[pick % ids.len()];
                    if graph.node(target).op() != Opcode::Placeholder {
                        let mut g = graph.inserting_before(target);
                        g.call_function(UNARY[pick % 4], vec![Arg::Node(ph)], vec![]);
                    }
                }
                // Retarget a unary call_function.
                1 => {
                    let candidates: Vec<_> = ids
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let n = graph.node(id);
                            n.op() == Opcode::CallFunction && UNARY.contains(&n.target())
                        })
                        .collect();
                    if !candidates.is_empty() {
                        graph
                            .set_target(candidates[pick % candidates.len()], UNARY[(pick + 1) % 4])
                            .unwrap();
                    }
                }
                // Erase an arbitrary dead node if one exists.
                _ => {
                    let dead: Vec<_> = ids
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let n = graph.node(id);
                            n.op() == Opcode::CallFunction && graph.users(id).is_empty()
                        })
                        .collect();
                    if !dead.is_empty() {
                        graph.erase_node(dead[pick % dead.len()]).unwrap();
                    }
                }
            }
        }
        gm.graph_mut().eliminate_dead_code();
        gm.recompile().unwrap();
        gm.graph().lint().unwrap();
        // Still runs — on the sequential path and the parallel path.
        let x = value(&[4], seed);
        assert!(gm.run(std::slice::from_ref(&x)).is_ok(), "case {case}");
        assert!(
            Executor::new(&gm)
                .with_threads(4)
                .run(std::slice::from_ref(&x))
                .is_ok(),
            "case {case}: parallel"
        );
    }
}

/// Quantize→dequantize of arbitrary data is bounded by half a step.
#[test]
fn quant_roundtrip_error_bounded() {
    use fx::tensor::quant::{choose_qparams, dequantize, quantize_per_tensor};
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xE0 + case);
        let n = rng.gen_range(1usize..64);
        let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0f32..10.0)).collect();

        let lo = data.iter().cloned().fold(f32::MAX, f32::min);
        let hi = data.iter().cloned().fold(f32::MIN, f32::max);
        let (scale, zp) = choose_qparams(lo, hi);
        let t = Tensor::from_vec(data, &[n]);
        let q = quantize_per_tensor(&t, scale, zp).unwrap();
        let back = dequantize(&q).unwrap();
        assert!(
            t.max_abs_diff(&back).unwrap() <= scale / 2.0 + 1e-6,
            "case {case}"
        );
    }
}

/// The estimator's liveness-based peak activation memory is at least
/// the largest single intermediate and at most the sum of all of them.
#[test]
fn peak_memory_bounds() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xF0 + case);
        let widths = random_widths(&mut rng, 2..6, 1..32);
        let seed = rng.next_u64();

        let mut mrng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&widths, &mut mrng);
        let mut gm = symbolic_trace(&mlp).unwrap();
        shape_prop(&mut gm, &[value(&[2, widths[0]], seed)]).unwrap();
        let peak = peak_activation_bytes(&gm);
        let sizes: Vec<u64> = gm
            .graph()
            .nodes()
            .filter_map(|n| n.shape_meta())
            .map(|s| 4 * s.iter().product::<usize>() as u64)
            .collect();
        let max_single = sizes.iter().copied().max().unwrap_or(0);
        let total: u64 = sizes.iter().sum();
        assert!(peak >= max_single, "case {case}");
        assert!(peak <= total, "case {case}");
    }
}
