//! Property-based tests over the whole stack: randomized models and
//! graph-edit sequences checking the invariants DESIGN.md commits to.

use fx::backend::compile;
use fx::passes::{eliminate_common_subexpressions, infer_shapes, peak_activation_bytes, shape_prop};
use fx::prelude::*;
use fx_core::Arg;
use fx_models::Mlp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn value(shape: &[usize], seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::Tensor(Tensor::rand_uniform(shape, -1.0, 1.0, &mut rng))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eager forward == traced-graph interpretation == compiled engine,
    /// for random MLP architectures and batch sizes.
    #[test]
    fn eager_interpreter_engine_agree(
        widths in proptest::collection::vec(1usize..24, 2..5),
        batch in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&widths, &mut rng);
        let gm = symbolic_trace(&mlp).unwrap();
        let x = value(&[batch, widths[0]], seed ^ 0x5eed);

        let eager = mlp.forward(std::slice::from_ref(&x)).unwrap();
        let interp = gm.run(std::slice::from_ref(&x)).unwrap();
        prop_assert!(eager.as_tensor().unwrap()
            .allclose(interp.as_tensor().unwrap(), 1e-4));

        let engine = compile(&gm).unwrap();
        let out = engine.run(&[x.as_tensor().unwrap().clone()]).unwrap();
        prop_assert!(out.allclose(eager.as_tensor().unwrap(), 1e-4));
    }

    /// Abstract shape inference agrees with concrete shape propagation
    /// on random MLPs.
    #[test]
    fn abstract_shapes_match_concrete(
        widths in proptest::collection::vec(1usize..16, 2..6),
        batch in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&widths, &mut rng);
        let mut gm_c = symbolic_trace(&mlp).unwrap();
        let mut gm_a = gm_c.clone();
        shape_prop(&mut gm_c, &[value(&[batch, widths[0]], seed)]).unwrap();
        let inferred = infer_shapes(&mut gm_a, &[vec![batch, widths[0]]]).unwrap();
        for node in gm_c.graph().nodes() {
            if let Some(s) = node.shape_meta() {
                prop_assert_eq!(inferred.get(node.name()).map(|v| v.as_slice()), Some(s));
            }
        }
    }

    /// Random chains of unary ops: graph surgery (CSE on a duplicated
    /// chain) never changes observable behaviour, and lint stays green.
    #[test]
    fn cse_preserves_random_unary_chains(
        ops in proptest::collection::vec(0usize..5, 1..6),
        seed in 0u64..1000,
    ) {
        const NAMES: [&str; 5] = ["relu", "sigmoid", "tanh", "abs", "exp"];
        let build = |xs: &[Value]| -> fx_core::Result<Value> {
            let mut a = xs[0].clone();
            let mut b = xs[0].clone();
            for &o in &ops {
                a = func::call(NAMES[o], &[a])?;
                b = func::call(NAMES[o], &[b])?; // duplicate chain
            }
            func::add(&a, &b)
        };
        let mut gm = symbolic_trace_fn(1, build).unwrap();
        let x = value(&[7], seed);
        let before = gm.run(std::slice::from_ref(&x)).unwrap();
        let removed = eliminate_common_subexpressions(&mut gm).unwrap();
        prop_assert_eq!(removed, ops.len(), "whole duplicate chain merges");
        gm.graph().lint().unwrap();
        let after = gm.run(std::slice::from_ref(&x)).unwrap();
        prop_assert_eq!(before, after);
    }

    /// Random insert/retarget/erase edit sequences keep the graph
    /// lint-clean, and DCE never breaks executability.
    #[test]
    fn graph_edits_preserve_invariants(
        edits in proptest::collection::vec((0usize..3, 0usize..8), 0..12),
        seed in 0u64..1000,
    ) {
        const UNARY: [&str; 4] = ["relu", "sigmoid", "tanh", "abs"];
        let mut gm = symbolic_trace_fn(1, |xs| {
            let a = func::relu(&xs[0])?;
            let b = func::tanh(&a)?;
            func::add(&a, &b)
        }).unwrap();
        for (kind, pick) in edits {
            let ids = gm.graph().node_ids();
            let graph = gm.graph_mut();
            match kind {
                // Insert a unary op before some node, consuming the
                // placeholder (always legal).
                0 => {
                    let ph = graph.placeholders()[0];
                    let target = ids[pick % ids.len()];
                    if graph.node(target).op() != Opcode::Placeholder {
                        graph.set_insert_point_before(target);
                        graph.call_function(UNARY[pick % 4], vec![Arg::Node(ph)], vec![]);
                        graph.clear_insert_point();
                    }
                }
                // Retarget a unary call_function.
                1 => {
                    let candidates: Vec<_> = ids.iter().copied().filter(|&id| {
                        let n = graph.node(id);
                        n.op() == Opcode::CallFunction && UNARY.contains(&n.target())
                    }).collect();
                    if !candidates.is_empty() {
                        graph.set_target(candidates[pick % candidates.len()], UNARY[(pick + 1) % 4]);
                    }
                }
                // Erase an arbitrary dead node if one exists.
                _ => {
                    let dead: Vec<_> = ids.iter().copied().filter(|&id| {
                        let n = graph.node(id);
                        n.op() == Opcode::CallFunction && graph.users(id).is_empty()
                    }).collect();
                    if !dead.is_empty() {
                        graph.erase_node(dead[pick % dead.len()]).unwrap();
                    }
                }
            }
        }
        gm.graph_mut().eliminate_dead_code();
        gm.recompile().unwrap();
        gm.graph().lint().unwrap();
        // Still runs.
        let x = value(&[4], seed);
        prop_assert!(gm.run(std::slice::from_ref(&x)).is_ok());
    }

    /// Quantize→dequantize of arbitrary data is bounded by half a step.
    #[test]
    fn quant_roundtrip_error_bounded(
        data in proptest::collection::vec(-10.0f32..10.0, 1..64),
    ) {
        use fx::tensor::quant::{choose_qparams, dequantize, quantize_per_tensor};
        let lo = data.iter().cloned().fold(f32::MAX, f32::min);
        let hi = data.iter().cloned().fold(f32::MIN, f32::max);
        let (scale, zp) = choose_qparams(lo, hi);
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let q = quantize_per_tensor(&t, scale, zp).unwrap();
        let back = dequantize(&q).unwrap();
        prop_assert!(t.max_abs_diff(&back).unwrap() <= scale / 2.0 + 1e-6);
    }

    /// The estimator's liveness-based peak activation memory is at least
    /// the largest single intermediate and at most the sum of all of
    /// them.
    #[test]
    fn peak_memory_bounds(
        widths in proptest::collection::vec(1usize..32, 2..6),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(&widths, &mut rng);
        let mut gm = symbolic_trace(&mlp).unwrap();
        shape_prop(&mut gm, &[value(&[2, widths[0]], seed)]).unwrap();
        let peak = peak_activation_bytes(&gm);
        let sizes: Vec<u64> = gm.graph().nodes()
            .filter_map(|n| n.shape_meta())
            .map(|s| 4 * s.iter().product::<usize>() as u64)
            .collect();
        let max_single = sizes.iter().copied().max().unwrap_or(0);
        let total: u64 = sizes.iter().sum();
        prop_assert!(peak >= max_single);
        prop_assert!(peak <= total);
    }
}
