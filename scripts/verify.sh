#!/usr/bin/env bash
# Tier-1 gate + executor smoke bench.
#
# 1. cargo build --release     — the workspace must build clean, offline,
#    and warning-free (-D warnings promotes any warning to a hard error).
# 2. cargo test -q             — all unit/integration/property tests.
# 3. fixed-seed fuzz slice     — a small deterministic slice of the
#    differential fuzz sweep (tests/fuzz_differential.rs); the full
#    64-case sweep runs as part of step 2, this re-runs a slice with
#    validation forced on even in release builds (FX_VALIDATE=1), once
#    per GEMM engine (FX_SIMD=1 AVX2 microkernels, FX_SIMD=0 portable
#    scalar), as is the fx-tensor kernel suite.
# 3b. memory-planner parity    — the executor parity suite under both
#    FX_MEMPLAN=0 and FX_MEMPLAN=1, proving the buffer-pool planner is
#    bit-identical to plain allocation on the paper's models.
# 3c. cross-backend parity     — the executor + serve parity suites in
#    release mode: both ExecutionBackends (plan-cached executor, exact-
#    mode AoT engine) and the autotuned choice answer bit-identically
#    to the solo executor, including under concurrent serve load.
# 3d. quantized parity         — tests/quant_parity.rs under every
#    FX_SIMD × FX_MEMPLAN combination: a PTQ int8 ResNet answers
#    bit-identically across engines, thread counts, planner modes and
#    batch positions, and the serve registry hot-swaps f32↔int8.
# 4. interp_vs_executor bench  — sequential (1-thread) vs parallel
#    plan-cached Executor on ResNet-50; records measured numbers (and the
#    plan-cache counters) to BENCH_executor.json at the workspace root.
#    Also autotunes each evaluation model and records the chosen
#    backend/config vs the default (the bench itself asserts the chosen
#    config re-measures no slower than the default within a 15% noise
#    margin); the autotune smoke step below checks the section landed.
# 5. serve smoke bench         — a few hundred requests from 4 concurrent
#    clients through the fx_serve dynamic batcher vs a one-at-a-time
#    baseline, then the 2-model registry phases (solo baselines,
#    weighted-fair contention, hot swap under load); records throughput
#    and latency percentiles plus the per-model fairness rows to
#    BENCH_serve.json at the workspace root. (fx-serve builds under the
#    same -D warnings as the rest of the workspace in steps 1–2.)
# 6. multi-model serve smoke   — the registry suite in release mode:
#    ResNet-50 hot swap under 4 concurrent clients (zero failures,
#    bit-exact versioning) plus a fixed-seed slice of the concurrent
#    register/swap/unregister/infer schedule fuzz.
set -euo pipefail
cd "$(dirname "$0")/.."

export RUSTFLAGS="-D warnings"

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: fixed-seed differential fuzz slice (both SIMD modes) =="
FX_SIMD=1 FX_VALIDATE=1 FX_FUZZ_CASES=8 cargo test -q --release --test fuzz_differential
FX_SIMD=0 FX_VALIDATE=1 FX_FUZZ_CASES=8 cargo test -q --release --test fuzz_differential

echo "== kernel engines: fx-tensor suite under AVX2 (+/- VNNI) and scalar =="
FX_SIMD=1 cargo test -q --release -p fx-tensor
FX_SIMD=1 FX_VNNI=0 cargo test -q --release -p fx-tensor
FX_SIMD=0 cargo test -q --release -p fx-tensor

echo "== memory-planner parity: FX_MEMPLAN=0 =="
FX_MEMPLAN=0 cargo test -q --release --test executor_parity --test memplan_estimator

echo "== memory-planner parity: FX_MEMPLAN=1 =="
FX_MEMPLAN=1 cargo test -q --release --test executor_parity --test memplan_estimator

echo "== cross-backend parity: executor vs engine vs autotuned (both SIMD modes) =="
FX_SIMD=1 cargo test -q --release --test executor_parity --test serve_parity
FX_SIMD=0 cargo test -q --release --test executor_parity --test serve_parity

echo "== quantized parity: int8 bit-identity across SIMD x memplan + f32<->int8 hot swap =="
# The suite itself sweeps threads and batch position; the process-level
# axes (GEMM engine, memory planner) are swept here. Every combination
# must produce byte-identical int8 model outputs, and the registry must
# hot-swap between the f32 and int8 versions with zero failed requests.
FX_SIMD=1 FX_MEMPLAN=1 cargo test -q --release --test quant_parity
FX_SIMD=1 FX_MEMPLAN=0 cargo test -q --release --test quant_parity
FX_SIMD=0 FX_MEMPLAN=1 cargo test -q --release --test quant_parity
FX_SIMD=0 FX_MEMPLAN=0 cargo test -q --release --test quant_parity

echo "== smoke bench: interp_vs_executor (+ autotune) =="
cargo bench -p fx-bench --bench interp_vs_executor

echo "== BENCH_executor.json =="
cat BENCH_executor.json

echo "== autotune smoke: chosen config recorded and within margin =="
grep -q '"autotune"' BENCH_executor.json
grep -q '"backend"' BENCH_executor.json
echo "autotune section present (per-model <=1.15x default asserted in-bench)"

echo "== kernel roofline smoke: GEMM/conv GFLOP/s vs host peak recorded =="
grep -q '"kernels"' BENCH_executor.json
grep -q '"fraction_of_peak"' BENCH_executor.json
echo "kernel roofline section present"

echo "== smoke bench: serve (dynamic batching vs one-at-a-time) =="
cargo bench -p fx-bench --bench serve

echo "== BENCH_serve.json =="
cat BENCH_serve.json

echo "== registry smoke: weighted-fair + swap-under-load rows recorded =="
grep -q '"registry"' BENCH_serve.json
grep -q '"fair_share_fraction"' BENCH_serve.json
grep -q '"swap_under_load"' BENCH_serve.json
echo "registry section present (>=80% fair share + zero swap failures asserted in-bench)"

echo "== multi-model serve smoke: hot swap under load + schedule fuzz slice =="
FX_FUZZ_CASES=3 cargo test -q --release --test serve_registry
echo "verify: OK"
