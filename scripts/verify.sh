#!/usr/bin/env bash
# Tier-1 gate + executor smoke bench.
#
# 1. cargo build --release     — the workspace must build clean, offline.
# 2. cargo test -q             — all unit/integration/property tests.
# 3. interp_vs_executor bench  — sequential interpreter vs the plan-cached
#    parallel Executor on ResNet-50; records measured numbers (and the
#    plan-cache counters) to BENCH_executor.json at the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== smoke bench: interp_vs_executor =="
cargo bench -p fx-bench --bench interp_vs_executor

echo "== BENCH_executor.json =="
cat BENCH_executor.json
echo "verify: OK"
